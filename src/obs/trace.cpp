#include "obs/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <random>

#include "common/check.hpp"
#include "obs/json.hpp"

namespace tspopt::obs {

namespace {

// Per-thread span nesting depth. Thread-local and process-global rather
// than per-tracer: a thread is inside one span stack regardless of which
// tracer records it, and the common case is the single global tracer.
thread_local std::int32_t t_depth = 0;

// The ids of the live spans enclosing the current point of execution,
// innermost last. Log events and instants read the top to correlate with
// the span they happened inside.
thread_local std::vector<std::uint64_t> t_span_stack;

// The *names* of the live spans, outermost first — the async-signal-safe
// mirror of the stacks above that the sampling profiler reads from its
// SIGPROF handler. Fixed-size array plus an atomic depth: the handler
// runs on the owning thread, so the release store on depth is only there
// to stop the compiler reordering the name store past it. `depth` keeps
// counting past kMaxSpanNameDepth so deep nests stay balanced; the
// overflowed names are simply not recorded.
struct ThreadSpanNames {
  const char* names[kMaxSpanNameDepth] = {};
  std::atomic<int> depth{0};
};
thread_local ThreadSpanNames t_span_names;

// Capture refcount: >0 while at least one profiler wants span names.
std::atomic<int> g_span_name_capture{0};

// Push/pop are only called from Span construction/destruction on the
// span's own thread (the RAII idiom everywhere in this codebase); a span
// moved across threads would unbalance the *name* stack of both threads,
// which is why Span is move-only within one scope, not a cross-thread
// handle.
inline void push_span_name(const char* name) {
  int d = t_span_names.depth.load(std::memory_order_relaxed);
  if (d >= 0 && d < kMaxSpanNameDepth) t_span_names.names[d] = name;
  t_span_names.depth.store(d + 1, std::memory_order_release);
}

inline void pop_span_name() {
  int d = t_span_names.depth.load(std::memory_order_relaxed);
  if (d > 0) t_span_names.depth.store(d - 1, std::memory_order_release);
}

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string quoted(std::string_view v) {
  std::string out;
  out.reserve(v.size() + 2);
  out += '"';
  out += json_escape(v);
  out += '"';
  return out;
}

}  // namespace

std::uint32_t current_thread_ordinal() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

std::uint64_t current_span_id() {
  return t_span_stack.empty() ? 0 : t_span_stack.back();
}

void set_span_name_capture(bool on) {
  g_span_name_capture.fetch_add(on ? 1 : -1, std::memory_order_relaxed);
}

bool span_name_capture_enabled() {
  return g_span_name_capture.load(std::memory_order_relaxed) > 0;
}

int current_span_names(const char** out, int max) {
  int depth = t_span_names.depth.load(std::memory_order_acquire);
  int n = std::min({depth, max, kMaxSpanNameDepth});
  for (int i = 0; i < n; ++i) out[i] = t_span_names.names[i];
  return n < 0 ? 0 : n;
}

SpanNameSnapshot capture_span_names() {
  SpanNameSnapshot snapshot;
  if (span_name_capture_enabled()) {
    snapshot.depth =
        current_span_names(snapshot.names, kMaxSpanNameDepth);
  }
  return snapshot;
}

SpanNameScope::SpanNameScope(const SpanNameSnapshot& snapshot) {
  if (snapshot.depth <= 0 || !span_name_capture_enabled()) return;
  active_ = true;
  saved_.depth = t_span_names.depth.load(std::memory_order_relaxed);
  int saved_n = std::min(saved_.depth, kMaxSpanNameDepth);
  for (int i = 0; i < saved_n; ++i) saved_.names[i] = t_span_names.names[i];
  for (int i = 0; i < snapshot.depth; ++i) {
    t_span_names.names[i] = snapshot.names[i];
  }
  t_span_names.depth.store(snapshot.depth, std::memory_order_release);
}

SpanNameScope::~SpanNameScope() {
  if (!active_) return;
  int saved_n = std::min(saved_.depth, kMaxSpanNameDepth);
  for (int i = 0; i < saved_n; ++i) t_span_names.names[i] = saved_.names[i];
  t_span_names.depth.store(saved_.depth, std::memory_order_release);
}

std::string new_trace_id() {
  static std::atomic<std::uint64_t> salt{0};
  std::random_device rd;
  std::uint64_t bits = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  bits ^= salt.fetch_add(0x9E3779B97F4A7C15ULL, std::memory_order_relaxed);
  char out[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 0; i < 16; ++i) out[i] = hex[(bits >> (60 - 4 * i)) & 0xF];
  out[16] = '\0';
  return out;
}

Span::Span(Tracer* tracer, const char* name, const char* category)
    : tracer_(tracer), named_(true) {
  event_.name = name;
  event_.category = category;
  event_.tid = current_thread_ordinal();
  event_.depth = t_depth++;
  event_.id = next_span_id();
  t_span_stack.push_back(event_.id);
  // Traced spans always maintain the name stack (two stores — noise next
  // to the event bookkeeping above), so a profiler started mid-run sees
  // complete attribution whenever tracing is on.
  push_span_name(name);
  event_.start_ns = tracer_->now_ns();
}

Span::Span(const char* name) : named_(true) { push_span_name(name); }

void Span::arg(const char* key, std::string_view value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, quoted(value));
}

void Span::arg(const char* key, const char* value) {
  arg(key, std::string_view(value));
}

void Span::arg(const char* key, std::int64_t value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, std::to_string(value));
}

void Span::arg(const char* key, std::uint64_t value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, std::to_string(value));
}

void Span::arg(const char* key, double value) {
  if (tracer_ == nullptr) return;
  JsonWriter w;
  w.value(value);
  event_.args.emplace_back(key, w.str());
}

void Span::arg(const char* key, bool value) {
  if (tracer_ == nullptr) return;
  event_.args.emplace_back(key, value ? "true" : "false");
}

void Span::finish() {
  if (named_) {
    pop_span_name();
    named_ = false;
  }
  if (tracer_ == nullptr) return;
  event_.duration_ns = tracer_->now_ns() - event_.start_ns;
  --t_depth;
  // Spans close LIFO on their thread in the instrumented code, so the top
  // of the stack is this span; search backwards anyway in case a span was
  // moved across threads or finished out of order.
  for (std::size_t i = t_span_stack.size(); i-- > 0;) {
    if (t_span_stack[i] == event_.id) {
      t_span_stack.erase(t_span_stack.begin() +
                         static_cast<std::ptrdiff_t>(i));
      break;
    }
  }
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->record(std::move(event_));
}

void Tracer::enable(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void Tracer::instant(
    const char* name, const char* category,
    std::initializer_list<std::pair<const char*, std::string>> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = name;
  event.category = category;
  event.tid = current_thread_ordinal();
  event.depth = t_depth;
  event.id = current_span_id();  // the span this instant occurred inside
  event.start_ns = now_ns();
  event.duration_ns = -1;
  for (const auto& [key, value] : args) {
    event.args.emplace_back(key, quoted(value));
  }
  record(std::move(event));
}

void Tracer::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

std::int64_t Tracer::now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::string Tracer::chrome_trace_json() const {
  std::vector<TraceEvent> snapshot = events();
  std::string process_name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    process_name = process_name_;
  }
  const std::int64_t pid = static_cast<std::int64_t>(::getpid());
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ns");
  w.key("traceEvents").begin_array();
  if (!process_name.empty()) {
    // Chrome metadata event naming this process's track group, so two
    // concatenated exports (client + daemon) stay distinguishable.
    w.begin_object();
    w.key("name").value("process_name");
    w.key("ph").value("M");
    w.key("pid").value(pid);
    w.key("tid").value(std::int64_t{0});
    w.key("args").begin_object();
    w.key("name").value(process_name);
    w.end_object();
    w.end_object();
  }
  for (const TraceEvent& e : snapshot) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value(e.category);
    if (e.duration_ns < 0) {
      w.key("ph").value("i");
      w.key("s").value("t");
    } else {
      w.key("ph").value("X");
      w.key("dur").value(static_cast<double>(e.duration_ns) / 1e3);
    }
    w.key("ts").value(static_cast<double>(e.start_ns) / 1e3);
    w.key("pid").value(pid);
    w.key("tid").value(e.tid);
    if (e.id != 0 || !e.args.empty()) {
      w.key("args").begin_object();
      if (e.id != 0) w.key("span_id").value(e.id);
      for (const auto& [key, rendered] : e.args) {
        w.key(key).raw_value(rendered);
      }
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void Tracer::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  TSPOPT_CHECK_MSG(out.good(), "cannot open trace output " << path);
  out << chrome_trace_json() << '\n';
  TSPOPT_CHECK_MSG(out.good(), "failed writing trace to " << path);
}

void Tracer::set_process_name(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  process_name_ = std::move(name);
}

void Tracer::set_flush_path(std::string path) {
  flush_path_ = std::move(path);
}

void Tracer::flush() const {
  if (!flush_path_.empty()) write_chrome_trace(flush_path_);
}

Tracer& Tracer::global() {
  // Leaked on purpose so the atexit flush below can never race static
  // destruction.
  static Tracer* tracer = [] {
    auto* t = new Tracer();
    const char* path = std::getenv("TSPOPT_TRACE");
    if (path != nullptr && *path != '\0') {
      t->set_flush_path(path);
      t->enable(true);
      std::atexit([] { Tracer::global().flush(); });
    }
    return t;
  }();
  return *tracer;
}

}  // namespace tspopt::obs
