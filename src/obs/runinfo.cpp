#include "obs/runinfo.hpp"

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <ctime>
#include <fstream>

namespace tspopt::obs {

namespace {

// SplitMix64 finalizer: spreads the (time, pid) seed over all 64 bits so
// two runs started in the same clock tick still get distinct ids.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

const std::string& run_id() {
  // Leaked on purpose: the exit-flush hooks render the id after static
  // destruction has begun, so the string must never be destroyed.
  static const std::string& id = *new std::string([] {
    auto now = std::chrono::system_clock::now().time_since_epoch();
    std::uint64_t ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count();
    std::uint64_t mixed =
        mix64(ns ^ (static_cast<std::uint64_t>(::getpid()) << 32));
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(mixed));
    return std::string(buf);
  }());
  return id;
}

std::string rfc3339_utc_ms(std::chrono::system_clock::time_point when) {
  auto since_epoch = when.time_since_epoch();
  auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(since_epoch);
  std::time_t secs = static_cast<std::time_t>(ms.count() / 1000);
  int millis = static_cast<int>(ms.count() % 1000);
  if (millis < 0) {  // pre-epoch times round toward zero
    millis += 1000;
    --secs;
  }
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, millis);
  return buf;
}

std::string rfc3339_utc_now_ms() {
  return rfc3339_utc_ms(std::chrono::system_clock::now());
}

const char* git_describe() {
#ifdef TSPOPT_GIT_DESCRIBE
  return TSPOPT_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

const std::string& cpu_model() {
  // Leaked for the same reason as run_id().
  static const std::string& model = *new std::string([] {
    std::ifstream cpuinfo("/proc/cpuinfo");
    std::string line;
    while (std::getline(cpuinfo, line)) {
      if (line.rfind("model name", 0) != 0) continue;
      auto colon = line.find(':');
      if (colon == std::string::npos) break;
      std::size_t start = line.find_first_not_of(" \t", colon + 1);
      if (start == std::string::npos) break;
      return line.substr(start);
    }
    return std::string("unknown");
  }());
  return model;
}

}  // namespace tspopt::obs
