// Low-overhead span tracer with Chrome trace-event / Perfetto export.
//
// Instrumented code opens RAII spans:
//
//   obs::Span span = obs::Tracer::global().span("engine.pass", "engine");
//   if (span) span.arg("n", n);
//
// When the tracer is disabled (the default) span() is a single relaxed
// atomic load and the returned Span is inert — the ISSUE's "no measurable
// overhead" guard. When enabled, each finished span records a named,
// nested (depth-tracked), thread-attributed event with steady-clock
// timestamps and key/value arguments; the whole buffer exports as Chrome
// `chrome://tracing` / Perfetto trace-event JSON ("X" complete events, so
// nesting renders from ts/dur containment per thread track).
//
// The global tracer reads TSPOPT_TRACE at first use: when set to a path,
// tracing is enabled and the trace is written there at process exit. Tests
// drive private Tracer instances (or enable/flush the global one)
// explicitly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tspopt::obs {

// Process-unique small integer for the calling thread (assigned on first
// use, in first-use order). This is the "tid" of exported trace events.
std::uint32_t current_thread_ordinal();

// A fresh 16-lowercase-hex distributed-trace correlation id. Unlike span
// ids (process-local ordinals), a trace id travels on the wire: the
// client stamps it into the job spec, and every span/log/journal record
// either side emits for that job carries the same value — which is what
// lets the two processes' Chrome exports merge into one timeline.
std::string new_trace_id();

// The id of the innermost live Span on the calling thread, or 0 when no
// span is open (or tracing is disabled). Structured log events stamp this
// so JSONL lines correlate to trace spans.
std::uint64_t current_span_id();

// ---- Span-name stack (sampling-profiler support) -------------------------
//
// The profiler attributes CPU samples to the phase they landed in, which
// needs the *names* of the live spans on the sampled thread — readable
// from a SIGPROF handler. The id stack above is a std::vector (not
// async-signal-safe), so Span additionally maintains a fixed-size
// per-thread array of name pointers. It is only maintained while capture
// is switched on (the profiler flips it around start/stop), keeping the
// common disabled path at one extra relaxed atomic load per span.

// Deepest nesting the name stack records; deeper spans still balance
// (depth keeps counting) but their names are not visible to the profiler.
inline constexpr int kMaxSpanNameDepth = 16;

// Turn per-thread span-name maintenance on/off process-wide (profiler
// start/stop). Nesting-safe: this is a counter, not a flag — concurrent
// captures each call (true) once and (false) once.
void set_span_name_capture(bool on);
bool span_name_capture_enabled();

// Copy up to `max` live span names of the calling thread into `out`,
// outermost first; returns the number copied. Async-signal-safe on the
// owning thread (plain array reads + one atomic depth load), which is the
// only place the profiler calls it from (SIGPROF runs on the sampled
// thread). Names are string literals and never dangle: a Span pops its
// name before its storage dies.
int current_span_names(const char** out, int max);

// Snapshot of the calling thread's live span names, adoptable on another
// thread. ThreadPool::submit captures one and installs it (SpanNameScope)
// around each task, so profiler samples landing on pool workers attribute
// to the phase that *submitted* the work (engine.pass, tsp.neighbor_lists,
// ...) instead of showing up unattributed. Both calls are no-ops (depth 0)
// while no profiler capture is on.
struct SpanNameSnapshot {
  const char* names[kMaxSpanNameDepth] = {};
  int depth = 0;
};
SpanNameSnapshot capture_span_names();

// RAII: overlay `snapshot` as the calling thread's span-name stack;
// restores the previous stack on destruction. Spans opened inside the
// scope nest on top of the adopted names, exactly as if they had been
// opened on the submitting thread.
class SpanNameScope {
 public:
  explicit SpanNameScope(const SpanNameSnapshot& snapshot);
  ~SpanNameScope();
  SpanNameScope(const SpanNameScope&) = delete;
  SpanNameScope& operator=(const SpanNameScope&) = delete;

 private:
  SpanNameSnapshot saved_;
  bool active_ = false;
};

struct TraceEvent {
  // Name/category point at string literals (the only call-site idiom);
  // they are not copied.
  const char* name = "";
  const char* category = "";
  std::int64_t start_ns = 0;
  std::int64_t duration_ns = 0;  // -1 = instant event
  // Process-unique span id (1-based); instant events carry the id of the
  // span they occurred inside (0 = none). Exported as args.span_id.
  std::uint64_t id = 0;
  std::uint32_t tid = 0;
  std::int32_t depth = 0;  // span nesting depth on its thread (0 = root)
  // Values are pre-rendered JSON fragments (quoted strings or bare
  // numbers), so export never re-inspects types.
  std::vector<std::pair<const char*, std::string>> args;
};

class Tracer;

// RAII span guard. Move-only; records its event when destroyed (or
// finish()ed early). A default-constructed or disabled Span is inert and
// converts to false.
class Span {
 public:
  Span() = default;
  Span(Span&& o) noexcept
      : tracer_(o.tracer_), named_(o.named_), event_(std::move(o.event_)) {
    o.tracer_ = nullptr;
    o.named_ = false;
  }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      finish();
      tracer_ = o.tracer_;
      named_ = o.named_;
      event_ = std::move(o.event_);
      o.tracer_ = nullptr;
      o.named_ = false;
    }
    return *this;
  }
  ~Span() { finish(); }

  explicit operator bool() const { return tracer_ != nullptr; }

  // Attach a key/value attribute. Keys must be string literals.
  void arg(const char* key, std::string_view value);
  void arg(const char* key, const char* value);
  void arg(const char* key, std::int64_t value);
  void arg(const char* key, std::uint64_t value);
  void arg(const char* key, std::int32_t value) {
    arg(key, static_cast<std::int64_t>(value));
  }
  void arg(const char* key, std::uint32_t value) {
    arg(key, static_cast<std::uint64_t>(value));
  }
  void arg(const char* key, double value);
  void arg(const char* key, bool value);

  // Record the event now instead of at destruction.
  void finish();

 private:
  friend class Tracer;
  Span(Tracer* tracer, const char* name, const char* category);
  // Name-only span: pushes onto the span-name stack for profiler
  // attribution but records no trace event (tracing disabled, capture on).
  explicit Span(const char* name);

  Tracer* tracer_ = nullptr;
  bool named_ = false;  // this span pushed onto the span-name stack
  TraceEvent event_;
};

class Tracer {
 public:
  Tracer() = default;

  void enable(bool on);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Open a span. Inert (no allocation, no clock read) when disabled —
  // unless a profiler capture wants span names, in which case the span
  // still maintains the name stack (two pointer stores, no clock read).
  Span span(const char* name, const char* category = "app") {
    if (enabled()) return Span(this, name, category);
    if (span_name_capture_enabled()) return Span(name);
    return Span();
  }

  // Record a zero-duration instant event (retry decisions, fault hits).
  // All argument values are recorded as strings. No-op when disabled.
  void instant(
      const char* name, const char* category,
      std::initializer_list<std::pair<const char*, std::string>> args = {});

  void record(TraceEvent event);

  std::vector<TraceEvent> events() const;
  std::size_t event_count() const;
  void clear();

  // Chrome trace-event JSON ({"traceEvents": [...]}), loadable by
  // chrome://tracing and ui.perfetto.dev.
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  // Name this process in the export (a Chrome "process_name" metadata
  // event). Events already carry the real pid, so two processes' exports
  // concatenate into one distinguishable multi-process timeline; the name
  // labels the tracks. Empty (the default) emits no metadata event.
  void set_process_name(std::string name);

  // Where flush() writes; the global tracer sets this from TSPOPT_TRACE.
  void set_flush_path(std::string path);
  const std::string& flush_path() const { return flush_path_; }
  // Write the Chrome trace to flush_path(); no-op when the path is empty.
  void flush() const;

  // Nanoseconds since this tracer was constructed (its trace epoch).
  std::int64_t now_ns() const;

  // The process-wide tracer. First use reads TSPOPT_TRACE: a non-empty
  // value enables tracing and registers an atexit flush to that path.
  static Tracer& global();

 private:
  friend class Span;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::string flush_path_;
  std::string process_name_;
  std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
};

}  // namespace tspopt::obs
