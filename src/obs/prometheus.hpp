// Prometheus text-format exposition of the metrics Registry.
//
// prometheus_text() renders every registered instrument in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-buckets plus _sum/_count (and a
// non-standard <name>_overflow counter for the implicit overflow bucket,
// since a scraper cannot recover it from le="+Inf" alone). Metric names
// are sanitized to the [a-zA-Z0-9_:] alphabet with a "tspopt_" prefix;
// label values are escaped per the spec (backslash, quote, newline). A
// tspopt_run_info{id=...,git=...} series carries the process run id so
// scrapes cross-correlate with the JSONL log and the run report.
//
// PromExporter writes the exposition to a file on a period (and once more
// at destruction) from a background jthread, and additionally on SIGUSR1 —
// so an operator can `kill -USR1` a long solve and scrape the file without
// waiting for the next period. Files are written to a temporary sibling
// and renamed, so a scraper never sees a torn exposition.
//
// The global-from-env exporter reads TSPOPT_PROM at first use:
// "<path>[,period_ms]" (default period 1000 ms).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>

namespace tspopt::obs {

class Registry;

std::string prometheus_text(const Registry& registry);

// Atomically replace `path` with the current exposition (tmp + rename).
void prometheus_write(const Registry& registry, const std::string& path);

class PromExporter {
 public:
  struct Options {
    std::string path;
    double period_ms = 1000.0;
  };

  PromExporter(Registry& registry, Options options);
  ~PromExporter();  // stop + one final write
  PromExporter(const PromExporter&) = delete;
  PromExporter& operator=(const PromExporter&) = delete;

  void stop();
  void write_now();
  std::uint64_t writes() const {
    return writes_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return options_.path; }

  // TSPOPT_PROM-driven exporter over Registry::global(); nullptr when the
  // variable is unset. Created (and leaked) on first call.
  static PromExporter* global_from_env();
  // The exporter global_from_env() created, or nullptr — never creates
  // (safe from exit/terminate hooks).
  static PromExporter* global_if_started();

 private:
  Registry& registry_;
  Options options_;
  std::atomic<std::uint64_t> writes_{0};
  std::jthread thread_;
};

}  // namespace tspopt::obs
