#include "obs/registry.hpp"

#include <algorithm>

#include "obs/json.hpp"

namespace tspopt::obs {

namespace {

const char* kind_name(Registry::Kind kind) {
  switch (kind) {
    case Registry::Kind::kCounter: return "counter";
    case Registry::Kind::kGauge: return "gauge";
    case Registry::Kind::kHistogram: return "histogram";
  }
  return "?";
}

std::string instrument_key(std::string_view name, const LabelSet& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x1f';  // unit separator: cannot appear in sane label text
    key += k;
    key += '\x1e';
    key += v;
  }
  return key;
}

}  // namespace

Registry::Instrument& Registry::find_or_create(std::string_view name,
                                               LabelSet labels, Kind kind,
                                               std::vector<double> bounds) {
  std::sort(labels.begin(), labels.end());
  std::string key = instrument_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    TSPOPT_CHECK_MSG(it->second.kind == kind,
                     "instrument \"" << name << "\" already registered as a "
                                     << kind_name(it->second.kind)
                                     << ", requested as a "
                                     << kind_name(kind));
    return it->second;
  }
  Instrument inst;
  inst.name = std::string(name);
  inst.labels = std::move(labels);
  inst.kind = kind;
  switch (kind) {
    case Kind::kCounter: inst.c = std::make_unique<Counter>(); break;
    case Kind::kGauge: inst.g = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      inst.h = std::make_unique<Histogram>(std::move(bounds));
      break;
  }
  return instruments_.emplace(std::move(key), std::move(inst)).first->second;
}

Counter& Registry::counter(std::string_view name, LabelSet labels) {
  return *find_or_create(name, std::move(labels), Kind::kCounter, {}).c;
}

Gauge& Registry::gauge(std::string_view name, LabelSet labels) {
  return *find_or_create(name, std::move(labels), Kind::kGauge, {}).g;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds, LabelSet labels) {
  return *find_or_create(name, std::move(labels), Kind::kHistogram,
                         std::move(bounds))
              .h;
}

std::vector<Registry::Entry> Registry::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.reserve(instruments_.size());
  // std::map iteration order over the serialized (name, labels) key IS the
  // stable (name, labels) order.
  for (const auto& [key, inst] : instruments_) {
    out.push_back({inst.name, inst.labels, inst.kind, inst.c.get(),
                   inst.g.get(), inst.h.get()});
  }
  return out;
}

void Registry::write_json(JsonWriter& w) const {
  w.begin_array();
  for (const Entry& e : entries()) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("kind").value(kind_name(e.kind));
    w.key("labels").begin_object();
    for (const auto& [k, v] : e.labels) w.key(k).value(v);
    w.end_object();
    switch (e.kind) {
      case Kind::kCounter:
        w.key("value").value(e.c->value());
        break;
      case Kind::kGauge:
        w.key("value").value(e.g->value());
        break;
      case Kind::kHistogram: {
        w.key("count").value(e.h->count());
        w.key("sum").value(e.h->sum());
        w.key("bounds").begin_array();
        for (double b : e.h->bounds()) w.value(b);
        w.end_array();
        w.key("buckets").begin_array();
        for (std::size_t i = 0; i <= e.h->bounds().size(); ++i) {
          w.value(e.h->bucket_count(i));
        }
        w.end_array();
        w.key("overflow").value(e.h->overflow_count());
        break;
      }
    }
    w.end_object();
  }
  w.end_array();
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  instruments_.clear();
}

Registry& Registry::global() {
  // Leaked on purpose: instrumented code may touch the registry from
  // atexit-ordered destructors (e.g. the trace flush).
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace tspopt::obs
