// In-process sampling CPU profiler with trace-span attribution.
//
// The paper's performance story is a timing decomposition; the trace layer
// says which *phase* is slow, this profiler says where the time goes
// *inside* it. A POSIX interval timer (setitimer ITIMER_PROF) delivers
// SIGPROF to whichever thread is burning CPU; the handler captures a raw
// `backtrace()` plus the thread's live span-name stack
// (obs::current_span_names — engine.pass, ils.iteration, serve.job, ...)
// into a lock-free per-thread ring. A background drain jthread symbolizes
// frames via dladdr + __cxa_demangle and folds samples into:
//
//   - collapsed-stack text (flamegraph.pl-compatible):
//       engine.pass;tspopt::SimdPrunedEngine::search;... 1234
//   - a per-span attribution table (samples whose stack contains each
//     span, and samples whose *innermost* span it is) — the RunReport v3
//     "profile" section,
//   - instant events on the Chrome trace export (a "profiler.sample"
//     track riding next to the spans themselves).
//
// Async-signal-safety: the handler touches only preallocated memory,
// lock-free atomics, clock_gettime and backtrace() (primed once at
// start() so its lazy libgcc initialization happens outside the handler —
// the gperftools discipline). Symbolization, demangling and every
// allocation happen on the drain thread. When a ring is full the sample
// is dropped and counted (surfaced as the obs.profiler.dropped counter) —
// the profiler never blocks the profiled thread.
//
// At most one profiler samples a process at a time: start() claims a
// process-global slot (SIGPROF + ITIMER_PROF are process-wide resources)
// and returns false when another instance holds it. The previous SIGPROF
// disposition and timer are restored by stop().
//
// Env driving mirrors the other sinks: TSPOPT_PROFILE=<path>[,hz] starts
// a global profiler at `hz` (default 97 — prime, so sampling cannot
// phase-lock with millisecond-periodic work) whose collapsed stacks are
// written to <path> by the exit flush hooks (obs/flush), ordered before
// the Chrome trace flush so the sampler track makes it into the export.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <sys/time.h>
#include <thread>
#include <vector>

namespace tspopt::obs {

class Tracer;

// Best-effort symbol name for a code address: demangled function name
// when dladdr resolves one (the executables link -rdynamic for exactly
// this), "module+0xoff" when only the object is known, "0x..." otherwise.
// Never throws, tolerates arbitrary garbage addresses (dladdr walks the
// link map; it does not dereference `pc`).
std::string symbolize_pc(void* pc);

// Render one raw sample as a collapsed-stack line body (no trailing
// count): span names outermost first, then symbolized frames root-first,
// ';'-joined. `frames` is leaf-first as backtrace() fills it. Tolerates
// garbage frames, null span entries and nonsense counts — fuzz-tested.
std::string collapse_sample(void* const* frames, int num_frames,
                            const char* const* spans, int num_spans);

struct ProfilerOptions {
  double hz = 97.0;              // sampling rate (clamped to [1, 1000])
  std::size_t max_threads = 32;  // per-thread ring slots (pool bound)
  std::size_t ring_capacity = 256;  // samples buffered per thread
  double drain_period_ms = 50.0;
  bool start_drain_thread = true;  // false: tests call drain_now()
  // Samples retained for the Chrome "profiler.sample" track; folding is
  // unbounded (it aggregates), the per-sample event list is not.
  std::size_t max_chrome_samples = 1 << 16;
};

class Profiler {
 public:
  static constexpr int kMaxFrames = 32;
  static constexpr int kMaxSpans = 16;  // == trace kMaxSpanNameDepth

  // One captured sample, written by the SIGPROF handler, consumed by the
  // drain thread. Fixed-size POD: the handler never allocates.
  struct RawSample {
    std::int64_t t_ns = 0;  // CLOCK_MONOTONIC
    std::uint32_t tid = 0;  // obs::current_thread_ordinal()
    std::int32_t num_frames = 0;
    std::int32_t num_spans = 0;
    void* frames[kMaxFrames];        // leaf-first (backtrace order)
    const char* spans[kMaxSpans];    // outermost-first (string literals)
  };

  // SPSC ring: the owning thread's handler produces at head, the drain
  // thread consumes at tail. Claimed from a preallocated pool by the
  // first SIGPROF a thread takes (CAS on `owner`, no allocation).
  struct ThreadRing {
    std::atomic<std::uint32_t> owner{0};  // thread ordinal; 0 = free
    std::atomic<std::uint64_t> head{0};
    std::atomic<std::uint64_t> tail{0};
    std::atomic<std::uint64_t> dropped{0};  // ring-full samples
    std::vector<RawSample> slots;
  };

  explicit Profiler(ProfilerOptions options = {});
  ~Profiler();  // stop()

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  // Arm SIGPROF + the interval timer and start the drain thread. Returns
  // false (and samples nothing) when another Profiler is already active
  // in this process. Idempotent while running.
  bool start();
  // Disarm the timer, restore the previous SIGPROF disposition, wait out
  // any in-flight handler, join the drain thread, take a final drain.
  // Idempotent; results stay readable after stopping.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Consume every ring now (also what the drain thread does each period).
  void drain_now();

  const ProfilerOptions& options() const { return options_; }
  double hz() const { return options_.hz; }

  std::uint64_t samples() const;     // drained into the fold
  std::uint64_t dropped() const;     // ring-full + thread-pool-exhausted
  std::uint64_t attributed() const;  // samples with >= 1 span name

  // Per-span attribution: `samples` counts samples whose span stack
  // contains the name anywhere, `leaf_samples` only those where it is the
  // innermost span. `share` is samples / total drained samples.
  struct SpanAttribution {
    std::string span;
    std::uint64_t samples = 0;
    std::uint64_t leaf_samples = 0;
    double share = 0.0;
  };
  // Sorted by samples, descending.
  std::vector<SpanAttribution> span_table() const;

  // The folded profile as collapsed-stack text ("stack count" lines).
  std::string collapsed() const;
  void write_collapsed(const std::string& path) const;

  // Merge retained samples into `tracer` as "profiler.sample" instant
  // events (timestamps converted from CLOCK_MONOTONIC to the tracer's
  // epoch), giving the Chrome export a sampler track. Idempotent per
  // profiler: the second call is a no-op.
  void append_chrome_samples(Tracer& tracer);

  // Where the exit flush hooks write collapsed stacks ("" = don't).
  void set_flush_path(std::string path) { flush_path_ = std::move(path); }
  const std::string& flush_path() const { return flush_path_; }

  // Handler entry point — called from the SIGPROF handler on the sampled
  // thread; async-signal-safe. Public only for the signal trampoline.
  // `pc` is the interrupted program counter from the signal context (may
  // be nullptr): when it appears in the backtrace, the sampler's own
  // frames above it are trimmed so the stored leaf is the sampled code.
  void sample_current_thread(void* pc = nullptr);

  // TSPOPT_PROFILE=<path>[,hz]-driven profiler (started, flush hooks
  // installed); nullptr when the variable is unset. Created and leaked on
  // first call, like the other env-driven sinks.
  static Profiler* global_from_env();
  // The profiler global_from_env() created, or nullptr — never creates.
  static Profiler* global_if_started();

 private:
  struct ChromeSample {
    std::int64_t t_ns = 0;
    std::uint32_t tid = 0;
    const char* span = nullptr;  // innermost span (literal) or null
    std::string func;            // symbolized leaf frame
  };

  void consume(const RawSample& sample);
  const std::string& symbolize_cached(void* pc);

  ProfilerOptions options_;
  std::uint64_t instance_id_ = 0;  // process-unique, never reused
  std::vector<std::unique_ptr<ThreadRing>> rings_;
  std::atomic<std::uint64_t> pool_exhausted_{0};
  std::atomic<bool> running_{false};

  struct sigaction old_action_ {};
  struct itimerval old_timer_ {};

  // Everything below drain_mu_ is drain-side state (drain thread, stop()
  // and readers).
  mutable std::mutex drain_mu_;
  std::map<void*, std::string> symbol_cache_;
  std::map<std::string, std::uint64_t> folded_;
  struct SpanCounts {
    std::uint64_t stack = 0;
    std::uint64_t leaf = 0;
  };
  std::map<std::string, SpanCounts> span_counts_;
  std::vector<ChromeSample> chrome_;
  std::uint64_t samples_ = 0;
  std::uint64_t attributed_ = 0;
  std::uint64_t counters_pushed_samples_ = 0;
  std::uint64_t counters_pushed_dropped_ = 0;

  std::string flush_path_;
  bool chrome_appended_ = false;

  std::jthread drain_thread_;  // last member: joined first
};

}  // namespace tspopt::obs
