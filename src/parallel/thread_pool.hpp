// A small static thread pool.
//
// This is the substrate under both the "parallel CPU" 2-opt baseline (the
// paper's 6-core OpenCL CPU implementation) and the SIMT simulator's block
// scheduler. Design goals: no work stealing (workloads here are regular),
// exception propagation to the submitter, and a blocking parallel-for with
// static or dynamic chunking.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace tspopt {

class ThreadPool {
 public:
  // `threads == 0` means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Enqueue a task; the future rethrows any exception in the caller.
  std::future<void> submit(std::function<void()> task);

  // Run fn(worker_index) on every pool worker plus the calling thread does
  // not participate; blocks until all complete. Exceptions: the first one
  // thrown is rethrown in the caller.
  void run_on_all(const std::function<void(std::size_t)>& fn);

  // Shared process-wide pool sized to hardware concurrency. Benches,
  // engines and the SIMT executor default to this instance so the machine
  // is never oversubscribed.
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tspopt
