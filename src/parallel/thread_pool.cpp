#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "obs/trace.hpp"

namespace tspopt {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // Carry the submitter's live span names into the task, so a sampling
  // profiler attributes worker-thread CPU to the submitting phase
  // (engine.pass and friends). Free when no capture is on: the snapshot
  // is empty and the scope a no-op.
  std::packaged_task<void()> packaged(
      [task = std::move(task), names = obs::capture_span_names()] {
        obs::SpanNameScope scope(names);
        task();
      });
  std::future<void> fut = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    TSPOPT_CHECK_MSG(!stop_, "submit on a stopped ThreadPool");
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::run_on_all(const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace tspopt
