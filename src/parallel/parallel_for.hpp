// Blocking data-parallel loops over integer ranges on a ThreadPool.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>

#include "common/check.hpp"
#include "parallel/thread_pool.hpp"

namespace tspopt {

// Static partition: range [begin, end) is cut into one contiguous chunk per
// worker. Right for regular per-element cost (the 2-opt pair space).
// fn(chunk_begin, chunk_end, worker_index) is called once per worker.
inline void parallel_for_chunks(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t, std::size_t)>& fn) {
  TSPOPT_CHECK(begin <= end);
  const std::int64_t total = end - begin;
  if (total == 0) return;
  const auto workers = static_cast<std::int64_t>(pool.size());
  const std::int64_t chunks = std::min<std::int64_t>(workers, total);
  const std::int64_t base = total / chunks;
  const std::int64_t rem = total % chunks;
  pool.run_on_all([&](std::size_t w) {
    auto c = static_cast<std::int64_t>(w);
    if (c >= chunks) return;
    // Chunks 0..rem-1 get one extra element.
    std::int64_t lo = begin + c * base + std::min(c, rem);
    std::int64_t hi = lo + base + (c < rem ? 1 : 0);
    fn(lo, hi, w);
  });
}

// Dynamic partition: workers grab fixed-size chunks from a shared counter.
// Right for irregular per-element cost (e.g. greedy edge construction).
inline void parallel_for_dynamic(
    ThreadPool& pool, std::int64_t begin, std::int64_t end,
    std::int64_t chunk,
    const std::function<void(std::int64_t, std::int64_t, std::size_t)>& fn) {
  TSPOPT_CHECK(begin <= end);
  TSPOPT_CHECK(chunk > 0);
  if (begin == end) return;
  std::atomic<std::int64_t> next{begin};
  pool.run_on_all([&](std::size_t w) {
    for (;;) {
      std::int64_t lo = next.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      fn(lo, std::min(lo + chunk, end), w);
    }
  });
}

// Element-wise convenience wrapper over the static partition.
inline void parallel_for_each(ThreadPool& pool, std::int64_t begin,
                              std::int64_t end,
                              const std::function<void(std::int64_t)>& fn) {
  parallel_for_chunks(pool, begin, end,
                      [&fn](std::int64_t lo, std::int64_t hi, std::size_t) {
                        for (std::int64_t i = lo; i < hi; ++i) fn(i);
                      });
}

}  // namespace tspopt
