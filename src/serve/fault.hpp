// Fault injection for the serve durability plane.
//
// PR 1 proved device fallback by injecting launch faults and watching the
// recovery ladder run; this header extends the same philosophy up into
// the serve layer's persistence path. A serve::FaultPlan is attached to a
// Journal (JournalOptions::faults) and can make individual journal
// appends or fsyncs fail, tear the final record mid-write (the classic
// power-loss artifact a replay must tolerate), or SIGKILL the process at
// a named journal phase — which is how the kill-and-restart recovery
// tests place a crash *exactly* between two lifecycle transitions
// instead of hoping a timer races well.
//
// All triggers are counted in terms of the journal's lifetime append /
// fsync ordinals (1-based), so a plan is deterministic for a given
// request sequence, matching simt::FaultPlan's launch-ordinal windows.
#pragma once

#include <atomic>
#include <csignal>
#include <cstdint>
#include <functional>
#include <string>

namespace tspopt::serve {

struct FaultPlan {
  // The Nth append's write() reports failure (nothing reaches the file).
  // The journal counts the record as an append error and stays usable.
  std::int64_t fail_write_at = -1;

  // The Nth fsync reports failure. Counted, logged, non-fatal: the data
  // was written, only the durability barrier is lost.
  std::int64_t fail_fsync_at = -1;

  // The Nth append writes only `tear_keep_bytes` of the record and then
  // behaves as if the process died mid-write: the journal wedges (drops
  // all further appends) so the torn bytes stay the final record on
  // disk, exactly what a crash between write() and completion leaves.
  std::int64_t tear_append_at = -1;
  std::size_t tear_keep_bytes = 7;

  // Raise SIGKILL when the journal reaches this phase. Phases:
  //   "append:accepted", "append:started", "append:settled",
  //   "append:rejected", "append:forgotten", "rotate", "open".
  // The crash fires *before* the phase's bytes are written, so the
  // journal state on disk is "everything up to but excluding" the phase.
  std::string crash_at_phase;

  // Test observer, called with every phase string as it is reached (after
  // the crash check). Must be cheap and thread-safe.
  std::function<void(const std::string& phase)> on_phase;

  // --- runtime state (the journal drives these) ---
  std::atomic<std::int64_t> appends_seen{0};
  std::atomic<std::int64_t> fsyncs_seen{0};

  void reach_phase(const std::string& phase) {
    if (!crash_at_phase.empty() && phase == crash_at_phase) {
      std::raise(SIGKILL);
    }
    if (on_phase) on_phase(phase);
  }

  // Decide this append's fate. Exactly one of the returned pair is set.
  struct AppendFate {
    bool fail_write = false;
    bool tear = false;
  };
  AppendFate next_append() {
    std::int64_t ordinal =
        appends_seen.fetch_add(1, std::memory_order_relaxed) + 1;
    AppendFate fate;
    fate.fail_write = ordinal == fail_write_at;
    fate.tear = ordinal == tear_append_at;
    return fate;
  }

  bool next_fsync_fails() {
    std::int64_t ordinal =
        fsyncs_seen.fetch_add(1, std::memory_order_relaxed) + 1;
    return ordinal == fail_fsync_at;
  }
};

}  // namespace tspopt::serve
