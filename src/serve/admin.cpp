#include "serve/admin.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "common/check.hpp"
#include "obs/json.hpp"
#include "obs/profiler.hpp"
#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "obs/runinfo.hpp"

namespace tspopt::serve {

namespace {

constexpr const char* kJsonContentType = "application/json; charset=utf-8";
// Version suffix per the Prometheus exposition-format spec; scrapers use
// it for content negotiation.
constexpr const char* kMetricsContentType =
    "text/plain; version=0.0.4; charset=utf-8";

obs::HttpResponse json_response(const obs::JsonWriter& w) {
  obs::HttpResponse response;
  response.content_type = kJsonContentType;
  response.body = w.str();
  response.body += '\n';
  return response;
}

void write_stats(obs::JsonWriter& w, const Scheduler::Stats& stats) {
  w.begin_object();
  w.key("accepted").value(stats.accepted);
  w.key("rejected_full").value(stats.rejected_full);
  w.key("rejected_invalid").value(stats.rejected_invalid);
  w.key("finished").value(stats.finished);
  w.key("failed").value(stats.failed);
  w.key("cancelled").value(stats.cancelled);
  w.key("expired").value(stats.expired);
  w.key("retries").value(stats.retries);
  w.key("recovered").value(stats.recovered);
  w.key("batches").value(stats.batches);
  w.key("batched_jobs").value(stats.batched_jobs);
  w.key("queue_depth").value(static_cast<std::uint64_t>(stats.queue_depth));
  w.key("active_jobs").value(static_cast<std::uint64_t>(stats.active_jobs));
  w.key("workers").value(static_cast<std::uint64_t>(stats.workers));
  w.key("devices").value(static_cast<std::uint64_t>(stats.devices));
  w.key("devices_available")
      .value(static_cast<std::uint64_t>(stats.devices_available));
  w.end_object();
}

void write_journal_stats(obs::JsonWriter& w, const Journal& journal) {
  Journal::Stats stats = journal.stats();
  w.begin_object();
  w.key("dir").value(journal.dir());
  w.key("appends").value(stats.appends);
  w.key("append_errors").value(stats.append_errors);
  w.key("bytes").value(stats.bytes);
  w.key("fsyncs").value(stats.fsyncs);
  w.key("fsync_errors").value(stats.fsync_errors);
  w.key("rotations").value(stats.rotations);
  w.key("torn_tails").value(stats.torn_tails);
  w.key("live_jobs").value(stats.live_jobs);
  w.key("settled_jobs").value(stats.settled_jobs);
  w.key("active_segment").value(stats.active_segment);
  w.key("active_bytes").value(stats.active_bytes);
  w.key("healthy").value(journal.healthy());
  w.end_object();
}

// /profilez admission: SIGPROF and ITIMER_PROF are process-wide, so the
// at-most-one-capture discipline is process-wide too, not per-daemon.
std::atomic<bool> g_profilez_busy{false};

// One live capture, owned by the connection's deferred poller. The
// destructor runs on every exit path — response sent, client gone, admin
// server stopping — so the timer is always disarmed and the busy flag
// always released.
struct ProfilezCapture {
  obs::Profiler profiler;
  std::chrono::steady_clock::time_point deadline{};
  bool started = false;

  explicit ProfilezCapture(obs::ProfilerOptions options)
      : profiler(options) {}
  ~ProfilezCapture() {
    if (started) profiler.stop();
    g_profilez_busy.store(false, std::memory_order_release);
  }
};

// A deferred poller that answers immediately (error paths).
obs::HttpServer::DeferredPoll immediate(int status, std::string body) {
  return [status, body = std::move(body)](obs::HttpResponse* response) {
    response->status = status;
    response->body = body;
    return true;
  };
}

}  // namespace

void mount_admin(obs::HttpServer& server, AdminContext context) {
  TSPOPT_CHECK_MSG(context.scheduler != nullptr,
                   "mount_admin needs a scheduler");
  // One shared copy of the context, captured by every handler.
  auto ctx = std::make_shared<AdminContext>(std::move(context));

  auto not_ready_reason = [ctx]() -> std::string {
    if (ctx->draining && ctx->draining()) return "draining";
    Scheduler::Readiness readiness = ctx->scheduler->readiness();
    return readiness.ready ? std::string() : readiness.reason;
  };

  server.route("/healthz", [](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.body = "ok\n";
    return response;
  });

  server.route("/readyz", [not_ready_reason](const obs::HttpRequest&) {
    obs::HttpResponse response;
    std::string reason = not_ready_reason();
    if (reason.empty()) {
      response.body = "ok\n";
    } else {
      response.status = 503;
      response.body = "not ready: " + reason + "\n";
    }
    return response;
  });

  server.route("/metrics", [ctx](const obs::HttpRequest&) {
    // Pull-refresh the sampled queue gauges so a scrape sees the queue as
    // it is now, not as it was at the last submit/settle.
    obs::Registry& registry = obs::Registry::global();
    Scheduler::Stats stats = ctx->scheduler->stats();
    registry.gauge("serve.queue_depth")
        .set(static_cast<double>(stats.queue_depth));
    registry.gauge("serve.queue_oldest_age_ms")
        .set(ctx->scheduler->queue_oldest_age_ms());
    obs::HttpResponse response;
    response.content_type = kMetricsContentType;
    response.body = obs::prometheus_text(registry);
    return response;
  });

  server.route("/statusz", [ctx, not_ready_reason](const obs::HttpRequest&) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("run_id").value(obs::run_id());
    w.key("git").value(obs::git_describe());
    w.key("started_at").value(obs::rfc3339_utc_ms(ctx->started_at));
    w.key("uptime_seconds")
        .value(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             ctx->started_steady)
                   .count());
    w.key("serve_port").value(static_cast<std::uint64_t>(ctx->serve_port));
    std::string reason = not_ready_reason();
    w.key("ready").value(reason.empty());
    if (!reason.empty()) w.key("not_ready_reason").value(reason);
    w.key("queue_oldest_age_ms").value(ctx->scheduler->queue_oldest_age_ms());
    w.key("stats");
    write_stats(w, ctx->scheduler->stats());
    // Micro-batcher occupancy: lifetime coalesced batches plus the mean
    // members per batch, so an operator can tell whether the linger window
    // is actually catching the traffic it was sized for.
    {
      const Batcher& batcher = ctx->scheduler->batcher();
      w.key("batcher").begin_object();
      w.key("max_batch")
          .value(static_cast<std::uint64_t>(batcher.options().max_batch));
      w.key("max_wait_ms").value(batcher.options().max_wait_ms);
      w.key("batches").value(batcher.batches());
      w.key("batched_jobs").value(batcher.batched_jobs());
      w.key("mean_occupancy")
          .value(batcher.batches() > 0
                     ? static_cast<double>(batcher.batched_jobs()) /
                           static_cast<double>(batcher.batches())
                     : 0.0);
      w.end_object();
    }
    // Per-phase pipeline latency quantiles from the serve.job_phase_us
    // histograms (linear interpolation inside the hit bucket — see
    // Histogram::quantile). Same bucket layout the scheduler registered,
    // so this lookup returns the live instruments, never fresh ones.
    w.key("phases").begin_object();
    for (const char* phase : {"wait", "lease", "run", "settle"}) {
      obs::Histogram& h = obs::Registry::global().histogram(
          "serve.job_phase_us", Scheduler::latency_buckets_us(),
          {{"phase", phase}});
      w.key(phase).begin_object();
      w.key("count").value(h.count());
      w.key("p50_us").value(h.count() > 0 ? h.quantile(0.5) : 0.0);
      w.key("p99_us").value(h.count() > 0 ? h.quantile(0.99) : 0.0);
      w.end_object();
    }
    w.end_object();
    if (const Journal* journal = ctx->scheduler->journal()) {
      w.key("journal");
      write_journal_stats(w, *journal);
    }
    w.key("active");
    w.begin_array();
    for (const std::shared_ptr<const Job>& job :
         ctx->scheduler->active_snapshot()) {
      write_job_status(w, *job);
    }
    w.end_array();
    w.end_object();
    return json_response(w);
  });

  server.route("/tracez", [ctx](const obs::HttpRequest& request) {
    std::vector<Scheduler::JobTraceSummary> slowest =
        ctx->scheduler->slowest_settled();
    auto limit = static_cast<std::size_t>(std::clamp<std::int64_t>(
        obs::query_int(request.query, "n",
                       static_cast<std::int64_t>(slowest.size())),
        0, static_cast<std::int64_t>(slowest.size())));
    obs::JsonWriter w;
    w.begin_object();
    w.key("capacity")
        .value(static_cast<std::uint64_t>(Scheduler::kTracezCapacity));
    w.key("slowest");
    w.begin_array();
    for (std::size_t i = 0; i < limit; ++i) {
      const Scheduler::JobTraceSummary& s = slowest[i];
      w.begin_object();
      w.key("id").value(s.id);
      if (!s.trace_id.empty()) w.key("trace_id").value(s.trace_id);
      w.key("engine").value(s.engine);
      w.key("state").value(to_string(s.state));
      w.key("wait_ms").value(s.wait_ms);
      w.key("lease_ms").value(s.lease_ms);
      w.key("run_ms").value(s.run_ms);
      w.key("settle_ms").value(s.settle_ms);
      w.key("total_ms").value(s.total_ms());
      if (s.best_length >= 0) w.key("best").value(s.best_length);
      // Batch membership: which coalesced pass this job rode in and how
      // many members shared it. Absent for jobs that ran solo.
      if (s.batch_id != 0) {
        w.key("batch_id").value(s.batch_id);
        w.key("batch_occupancy")
            .value(static_cast<std::int64_t>(s.batch_occupancy));
      }
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return json_response(w);
  });

  // Live CPU capture. The handler only *starts* the capture; the returned
  // poller waits out the window on the admin loop's tick, so every other
  // endpoint (readiness above all) keeps answering while the profiler
  // runs. The capture object rides in the poller: if the client
  // disconnects mid-capture, the poller is destroyed and the capture
  // cancels via RAII.
  server.route_deferred(
      "/profilez",
      [ctx](const obs::HttpRequest& request)
          -> obs::HttpServer::DeferredPoll {
        if (ctx->profilez_max_seconds <= 0.0) {
          return immediate(404, "profilez disabled\n");
        }
        const auto max_seconds =
            static_cast<std::int64_t>(ctx->profilez_max_seconds);
        std::int64_t seconds = std::clamp<std::int64_t>(
            obs::query_int(request.query, "seconds", 2), 1,
            std::max<std::int64_t>(1, max_seconds));
        std::int64_t hz = std::clamp<std::int64_t>(
            obs::query_int(request.query, "hz", 97), 1, 1000);

        bool expected = false;
        if (!g_profilez_busy.compare_exchange_strong(expected, true)) {
          return immediate(503, "a profile capture is already in flight; "
                                "retry when it finishes\n");
        }
        obs::ProfilerOptions options;
        options.hz = static_cast<double>(hz);
        auto capture = std::make_shared<ProfilezCapture>(options);
        capture->started = capture->profiler.start();
        if (!capture->started) {
          // Keep `capture` alive into the poller: its destructor releases
          // the busy flag.
          return [capture](obs::HttpResponse* response) {
            response->status = 503;
            response->body =
                "another profiler owns SIGPROF in this process "
                "(TSPOPT_PROFILE capture?)\n";
            return true;
          };
        }
        capture->deadline = std::chrono::steady_clock::now() +
                            std::chrono::seconds(seconds);
        return [capture](obs::HttpResponse* response) {
          if (std::chrono::steady_clock::now() < capture->deadline) {
            return false;  // still sampling; poll again next tick
          }
          capture->profiler.stop();
          response->status = 200;
          response->body = capture->profiler.collapsed();
          if (response->body.empty()) {
            // No CPU burned during the window — still a valid capture.
            response->body = "[idle] 0\n";
          }
          return true;
        };
      });
}

}  // namespace tspopt::serve
