#include "serve/admin.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.hpp"
#include "obs/json.hpp"
#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "obs/runinfo.hpp"

namespace tspopt::serve {

namespace {

constexpr const char* kJsonContentType = "application/json; charset=utf-8";
// Version suffix per the Prometheus exposition-format spec; scrapers use
// it for content negotiation.
constexpr const char* kMetricsContentType =
    "text/plain; version=0.0.4; charset=utf-8";

obs::HttpResponse json_response(const obs::JsonWriter& w) {
  obs::HttpResponse response;
  response.content_type = kJsonContentType;
  response.body = w.str();
  response.body += '\n';
  return response;
}

void write_stats(obs::JsonWriter& w, const Scheduler::Stats& stats) {
  w.begin_object();
  w.key("accepted").value(stats.accepted);
  w.key("rejected_full").value(stats.rejected_full);
  w.key("rejected_invalid").value(stats.rejected_invalid);
  w.key("finished").value(stats.finished);
  w.key("failed").value(stats.failed);
  w.key("cancelled").value(stats.cancelled);
  w.key("expired").value(stats.expired);
  w.key("retries").value(stats.retries);
  w.key("recovered").value(stats.recovered);
  w.key("queue_depth").value(static_cast<std::uint64_t>(stats.queue_depth));
  w.key("active_jobs").value(static_cast<std::uint64_t>(stats.active_jobs));
  w.key("workers").value(static_cast<std::uint64_t>(stats.workers));
  w.key("devices").value(static_cast<std::uint64_t>(stats.devices));
  w.key("devices_available")
      .value(static_cast<std::uint64_t>(stats.devices_available));
  w.end_object();
}

void write_journal_stats(obs::JsonWriter& w, const Journal& journal) {
  Journal::Stats stats = journal.stats();
  w.begin_object();
  w.key("dir").value(journal.dir());
  w.key("appends").value(stats.appends);
  w.key("append_errors").value(stats.append_errors);
  w.key("bytes").value(stats.bytes);
  w.key("fsyncs").value(stats.fsyncs);
  w.key("fsync_errors").value(stats.fsync_errors);
  w.key("rotations").value(stats.rotations);
  w.key("torn_tails").value(stats.torn_tails);
  w.key("live_jobs").value(stats.live_jobs);
  w.key("settled_jobs").value(stats.settled_jobs);
  w.key("active_segment").value(stats.active_segment);
  w.key("active_bytes").value(stats.active_bytes);
  w.key("healthy").value(journal.healthy());
  w.end_object();
}

}  // namespace

void mount_admin(obs::HttpServer& server, AdminContext context) {
  TSPOPT_CHECK_MSG(context.scheduler != nullptr,
                   "mount_admin needs a scheduler");
  // One shared copy of the context, captured by every handler.
  auto ctx = std::make_shared<AdminContext>(std::move(context));

  auto not_ready_reason = [ctx]() -> std::string {
    if (ctx->draining && ctx->draining()) return "draining";
    Scheduler::Readiness readiness = ctx->scheduler->readiness();
    return readiness.ready ? std::string() : readiness.reason;
  };

  server.route("/healthz", [](const obs::HttpRequest&) {
    obs::HttpResponse response;
    response.body = "ok\n";
    return response;
  });

  server.route("/readyz", [not_ready_reason](const obs::HttpRequest&) {
    obs::HttpResponse response;
    std::string reason = not_ready_reason();
    if (reason.empty()) {
      response.body = "ok\n";
    } else {
      response.status = 503;
      response.body = "not ready: " + reason + "\n";
    }
    return response;
  });

  server.route("/metrics", [ctx](const obs::HttpRequest&) {
    // Pull-refresh the sampled queue gauges so a scrape sees the queue as
    // it is now, not as it was at the last submit/settle.
    obs::Registry& registry = obs::Registry::global();
    Scheduler::Stats stats = ctx->scheduler->stats();
    registry.gauge("serve.queue_depth")
        .set(static_cast<double>(stats.queue_depth));
    registry.gauge("serve.queue_oldest_age_ms")
        .set(ctx->scheduler->queue_oldest_age_ms());
    obs::HttpResponse response;
    response.content_type = kMetricsContentType;
    response.body = obs::prometheus_text(registry);
    return response;
  });

  server.route("/statusz", [ctx, not_ready_reason](const obs::HttpRequest&) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("run_id").value(obs::run_id());
    w.key("git").value(obs::git_describe());
    w.key("started_at").value(obs::rfc3339_utc_ms(ctx->started_at));
    w.key("uptime_seconds")
        .value(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             ctx->started_steady)
                   .count());
    w.key("serve_port").value(static_cast<std::uint64_t>(ctx->serve_port));
    std::string reason = not_ready_reason();
    w.key("ready").value(reason.empty());
    if (!reason.empty()) w.key("not_ready_reason").value(reason);
    w.key("queue_oldest_age_ms").value(ctx->scheduler->queue_oldest_age_ms());
    w.key("stats");
    write_stats(w, ctx->scheduler->stats());
    if (const Journal* journal = ctx->scheduler->journal()) {
      w.key("journal");
      write_journal_stats(w, *journal);
    }
    w.key("active");
    w.begin_array();
    for (const std::shared_ptr<const Job>& job :
         ctx->scheduler->active_snapshot()) {
      write_job_status(w, *job);
    }
    w.end_array();
    w.end_object();
    return json_response(w);
  });

  server.route("/tracez", [ctx](const obs::HttpRequest& request) {
    std::vector<Scheduler::JobTraceSummary> slowest =
        ctx->scheduler->slowest_settled();
    auto limit = static_cast<std::size_t>(std::clamp<std::int64_t>(
        obs::query_int(request.query, "n",
                       static_cast<std::int64_t>(slowest.size())),
        0, static_cast<std::int64_t>(slowest.size())));
    obs::JsonWriter w;
    w.begin_object();
    w.key("capacity")
        .value(static_cast<std::uint64_t>(Scheduler::kTracezCapacity));
    w.key("slowest");
    w.begin_array();
    for (std::size_t i = 0; i < limit; ++i) {
      const Scheduler::JobTraceSummary& s = slowest[i];
      w.begin_object();
      w.key("id").value(s.id);
      if (!s.trace_id.empty()) w.key("trace_id").value(s.trace_id);
      w.key("engine").value(s.engine);
      w.key("state").value(to_string(s.state));
      w.key("wait_ms").value(s.wait_ms);
      w.key("lease_ms").value(s.lease_ms);
      w.key("run_ms").value(s.run_ms);
      w.key("settle_ms").value(s.settle_ms);
      w.key("total_ms").value(s.total_ms());
      if (s.best_length >= 0) w.key("best").value(s.best_length);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return json_response(w);
  });
}

}  // namespace tspopt::serve
