// The serve-side micro-batcher: queued-job coalescing for batch engines.
//
// The batch engines (solver/batch/) amortize per-pass overhead across
// many tours of ONE instance, but serve traffic arrives as individual
// jobs. The Batcher bridges the two: when a worker dequeues a job whose
// spec opted in (`batchable`) and whose engine class has a batch
// implementation, it lingers up to `max_wait_ms` collecting other queued
// jobs with the same *batch key* — identical instance bytes, same engine
// class, same k — up to `max_batch` members, and the scheduler runs the
// whole set through one PopulationIls pass sequence (migrate_every = 0,
// one member per job, each on its own seed/budget/stop hooks). Every
// member is still an individual job: own journal records, own RunReport,
// own terminal state; the results are bit-identical to solo runs of the
// same specs.
//
// The key is deliberately strict — jobs that differ in anything that
// could change the staged coordinate slab (instance identity, n, k) or
// the engine class never coalesce, so a shape mismatch inside a batch is
// a bug, not a policy decision; the scheduler still re-verifies member
// shapes before running and fails mismatches with a typed "batch shape:"
// error rather than padding tours of different lengths together.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "serve/job.hpp"
#include "serve/queue.hpp"

namespace tspopt::serve {

struct BatcherOptions {
  // Most members one coalesced pass may carry; 1 disables coalescing.
  std::size_t max_batch = 8;
  // How long the lead job lingers for followers to arrive. 0 = take only
  // what is already queued (no added latency).
  double max_wait_ms = 2.0;
};

// True when `engine` belongs to a class the micro-batcher can coalesce:
// the batch-* engines themselves plus the single-tour classes with a
// bit-identical batch implementation (cpu-simd -> batch-simd, gpu-small
// -> batch-gpu).
bool batchable_engine(const std::string& engine);

// The batch-* engine the coalesced pass runs for `engine`; "" when the
// class is not batchable.
std::string batch_engine_for(const std::string& engine);

// True when the micro-batcher may coalesce this spec at all (opted in AND
// batchable engine class).
bool spec_batchable(const JobSpec& spec);

// The coalescing identity: jobs coalesce iff their keys match. Covers the
// engine's batch class, k, and the instance identity — catalog name, or
// for inline payloads the point count plus an FNV-1a hash of the exact
// coordinate bytes (name alone would let two different point sets with
// the same label coalesce).
std::string batch_key(const JobSpec& spec);

class Batcher {
 public:
  Batcher(JobQueue& queue, BatcherOptions options);

  // Grow a batch around the already-popped lead job: pull queued jobs
  // matching the lead's batch key until the batch is full or max_wait_ms
  // elapses. Returns lead + followers (lead first; followers in
  // priority-then-FIFO order). Never blocks past max_wait_ms; a
  // non-batchable lead returns {lead} immediately.
  std::vector<std::shared_ptr<Job>> collect(std::shared_ptr<Job> lead);

  const BatcherOptions& options() const { return options_; }

  // Lifetime totals for /statusz and the stats verb.
  std::uint64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }
  std::uint64_t batched_jobs() const {
    return batched_jobs_.load(std::memory_order_relaxed);
  }

 private:
  JobQueue& queue_;
  BatcherOptions options_;
  std::atomic<std::uint64_t> batches_{0};       // coalesced (>= 2) batches
  std::atomic<std::uint64_t> batched_jobs_{0};  // members of those batches
};

}  // namespace tspopt::serve
