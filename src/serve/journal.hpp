// Crash-safe write-ahead job journal for the solve service.
//
// tspoptd (PR 5) kept every job in memory: a daemon crash threw away the
// whole backlog plus hours of GPU work on running jobs. The Journal makes
// the serve plane durable: every accepted job's wire-schema JSON and
// every lifecycle transition (accepted / started / settled / rejected /
// forgotten) is appended to a length-prefixed, checksummed, fsync-batched
// log under one directory. On startup the scheduler replays the journal
// and gets back the exact pre-crash job table: settled jobs with their
// retained results, queued and running jobs ready to re-queue (running
// ILS jobs then resume from their latest per-job checkpoint in the
// spool/ subdirectory — see Scheduler).
//
// On-disk layout (`dir/`):
//
//   segment-000001.wal, segment-000002.wal, ...   (replayed in order)
//   spool/job-<id>.ckpt                           (per-job ILS checkpoints)
//
// Each record is `u32 payload_len | u64 fnv1a(payload) | payload`, where
// the payload is one JSON object: {"type":"accepted","id":N,"job":{...}},
// {"type":"started","id":N,"attempts":K}, {"type":"settled","id":N,
// "state":"finished","result":{...}} (or "error":"..."), {"type":
// "rejected","id":N}, {"type":"forgotten","id":N}, and the compaction
// snapshot form {"type":"job",...} that folds a job's whole history into
// one record.
//
// Torn-tail tolerance: a record truncated by a crash mid-write fails its
// length or checksum check; when it is the *final* record of the final
// segment it is dropped with a logged `journal.torn_tail` event — the
// expected power-loss artifact, never an error. A bad checksum anywhere
// else is corruption: the rest of that segment is skipped with a
// `journal.corrupt` warning, and everything already replayed survives.
//
// Rotation & compaction: when the active segment exceeds
// max_segment_bytes (or enough settled records pile up) the journal
// writes a *snapshot* of its live digest to the next segment atomically
// (tmp + fsync + rename) and deletes the older segments — settled jobs
// compact to one record each and forgotten jobs vanish. open_and_replay()
// performs the same snapshot, so every restart is also a compaction.
//
// Durability policy: appends go to the fd immediately (a SIGKILLed
// process loses nothing that was written); fsync is batched on a wall
// clock interval (fsync_interval_ms) to bound what a *machine* crash can
// lose without paying an fsync per request.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/fault.hpp"
#include "serve/job.hpp"

namespace tspopt::serve {

struct JournalOptions {
  // Rotate + compact when the active segment grows past this.
  std::size_t max_segment_bytes = 8u << 20;
  // ... or when this many settle/forget records accumulated since the
  // last compaction (keeps long-lived daemons with tiny jobs compact).
  std::size_t compact_min_settled = 512;
  // fsync the active segment at most this often (0 = every append,
  // < 0 = never). Batched by default: write() always happens per append.
  double fsync_interval_ms = 25.0;
  // Serve-layer fault injection (tests); nullptr = none. Not owned.
  FaultPlan* faults = nullptr;
};

class Journal {
 public:
  // Everything the replay learned about one job, folded over its records.
  struct RecoveredJob {
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::kQueued;  // last journaled state
    std::int32_t attempts = 0;           // > 0 when it had started
    JobResult result;                    // restored for finished jobs
    std::string error;                   // restored for failed jobs
  };

  struct ReplayResult {
    std::vector<RecoveredJob> jobs;  // ascending id
    std::uint64_t next_id = 1;       // max journaled id + 1
    std::size_t segments_read = 0;
    std::size_t records_read = 0;
    bool torn_tail = false;  // final record dropped (checksum/length)
    bool corrupt = false;    // non-final bad record: segment tail skipped
  };

  struct Stats {
    std::uint64_t appends = 0;
    std::uint64_t append_errors = 0;
    std::uint64_t bytes = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t fsync_errors = 0;
    std::uint64_t rotations = 0;
    std::uint64_t torn_tails = 0;
    std::uint64_t live_jobs = 0;     // digest entries not yet settled
    std::uint64_t settled_jobs = 0;  // digest entries retained settled
    bool last_append_ok = true;      // most recent append landed
    bool last_fsync_ok = true;       // most recent fsync attempt succeeded
    std::uint64_t active_segment = 0;
    std::uint64_t active_bytes = 0;
  };

  // Creates `dir` (and `dir/spool/`) if needed. Does NOT touch existing
  // segments until open_and_replay().
  explicit Journal(std::string dir, JournalOptions options = {});
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Replay every segment in order, build the digest, then write a
  // compacted snapshot as the new active segment and delete the old
  // ones. Must be called exactly once, before any append.
  ReplayResult open_and_replay();

  // Lifecycle appends. Return false when the record could not be made
  // durable (I/O failure, injected fault, wedged journal) — the caller
  // decides whether that is fatal (admission) or best-effort (settle).
  bool append_accepted(const Job& job);
  bool append_started(std::uint64_t id, std::int32_t attempt);
  bool append_settled(const Job& job, JobState state);
  bool append_rejected(std::uint64_t id);   // admission rollback
  bool append_forgotten(std::uint64_t id);  // result dropped/evicted

  // Force write + fsync of everything appended so far.
  void flush();

  const std::string& dir() const { return dir_; }
  // Per-job ILS checkpoint spool path: dir()/spool/job-<id>.ckpt.
  std::string spool_dir() const;
  std::string checkpoint_path(std::uint64_t id) const;

  Stats stats() const;

  // Readiness signal for /readyz: the journal is healthy when it is not
  // wedged and the most recent append and fsync both succeeded. A single
  // failed fsync flips this false until a later fsync lands — durability
  // is degraded, so the daemon should stop admitting work it may lose.
  bool healthy() const;

 private:
  // The journal's own fold of the record stream — what a snapshot writes
  // and what replay returns. Raw JSON fragments are kept verbatim so
  // snapshotting never re-serializes through the wire schema.
  struct DigestEntry {
    std::string job_json;  // tspopt.job wire object
    std::string state = "queued";
    std::int32_t attempts = 0;
    std::string result_json;  // non-empty for finished
    std::string error;        // non-empty for failed
  };

  bool append_record(const char* phase, const std::string& payload);
  void apply_to_digest(const obs::JsonValue& record);
  bool maybe_rotate_locked();
  bool write_snapshot_segment(std::uint64_t seq);  // tmp + fsync + rename
  std::string segment_path(std::uint64_t seq) const;
  std::string snapshot_payload(std::uint64_t id, const DigestEntry& e) const;
  bool fsync_active_locked(bool force);

  const std::string dir_;
  JournalOptions options_;

  mutable std::mutex mu_;
  int fd_ = -1;                  // active segment
  std::uint64_t active_seq_ = 0; // 0 = not opened yet
  std::size_t active_bytes_ = 0;
  std::size_t settled_since_rotate_ = 0;
  bool opened_ = false;
  bool wedged_ = false;  // torn append injected: drop everything after
  bool last_append_ok_ = true;
  bool last_fsync_ok_ = true;
  std::chrono::steady_clock::time_point last_fsync_{};
  std::map<std::uint64_t, DigestEntry> digest_;
  std::uint64_t max_id_ = 0;

  std::uint64_t n_appends_ = 0, n_append_errors_ = 0, n_bytes_ = 0,
                n_fsyncs_ = 0, n_fsync_errors_ = 0, n_rotations_ = 0,
                n_torn_tails_ = 0;

  // Registry mirrors of the counters above (tspopt_serve_journal_* in
  // the Prometheus exposition). Process-global, so multiple Journal
  // instances accumulate into the same series.
  struct Metrics;
  std::unique_ptr<Metrics> m_;
};

}  // namespace tspopt::serve
