#include "serve/job.hpp"

#include <cmath>
#include <limits>

#include "common/check.hpp"

namespace tspopt::serve {

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kFinished: return "finished";
    case JobState::kCancelled: return "cancelled";
    case JobState::kExpired: return "expired";
    case JobState::kFailed: return "failed";
  }
  return "unknown";
}

bool is_terminal(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

double Job::deadline_remaining_ms() const {
  if (!has_deadline()) return std::numeric_limits<double>::infinity();
  auto elapsed = std::chrono::duration<double, std::milli>(
      std::chrono::steady_clock::now() - accepted_at_);
  return spec_.deadline_ms - elapsed.count();
}

std::string job_spec_to_json(const JobSpec& spec) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("tspopt.job");
  w.key("schema_version").value(static_cast<std::int64_t>(kJobSchemaVersion));
  if (!spec.catalog.empty()) {
    w.key("catalog").value(spec.catalog);
  } else {
    w.key("name").value(spec.instance_name);
    w.key("points").begin_array();
    for (const Point& p : spec.points) {
      w.begin_array();
      w.value(static_cast<double>(p.x));
      w.value(static_cast<double>(p.y));
      w.end_array();
    }
    w.end_array();
  }
  w.key("engine").value(spec.engine);
  w.key("priority").value(spec.priority);
  w.key("time_limit_seconds").value(spec.time_limit_seconds);
  w.key("max_iterations").value(spec.max_iterations);
  w.key("deadline_ms").value(spec.deadline_ms);
  w.key("seed").value(spec.seed);
  w.key("devices").value(spec.devices);
  if (spec.k != 0) w.key("k").value(spec.k);
  if (spec.batchable) w.key("batchable").value(true);
  if (!spec.idempotency_key.empty()) {
    w.key("idempotency_key").value(spec.idempotency_key);
  }
  if (!spec.trace_id.empty()) w.key("trace_id").value(spec.trace_id);
  if (spec.parent_span != 0) w.key("parent_span").value(spec.parent_span);
  w.end_object();
  return w.str();
}

namespace {

double number_field(const obs::JsonValue& v, const char* key, double fallback) {
  const obs::JsonValue* f = v.find(key);
  if (f == nullptr) return fallback;
  TSPOPT_CHECK_MSG(f->kind == obs::JsonValue::Kind::kNumber,
                   "job field \"" << key << "\" must be a number");
  return f->number;
}

// Integer fields round-trip through JSON's double; beyond 2^53 that
// truncates silently, so values outside the exactly-representable range
// (or non-integral values) are rejected instead of mangled.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

std::int64_t integer_field(const obs::JsonValue& v, const char* key,
                           std::int64_t fallback) {
  double d = number_field(v, key, static_cast<double>(fallback));
  TSPOPT_CHECK_MSG(d == std::floor(d) && std::abs(d) <= kMaxExactInteger,
                   "job field \"" << key
                                  << "\" must be an integer with |value| <= "
                                     "2^53, got "
                                  << d);
  return static_cast<std::int64_t>(d);
}

}  // namespace

JobSpec job_spec_from_json(const obs::JsonValue& value) {
  TSPOPT_CHECK_MSG(value.is_object(), "job payload must be a JSON object");
  const obs::JsonValue& schema = value.at("schema");
  TSPOPT_CHECK_MSG(schema.kind == obs::JsonValue::Kind::kString &&
                       schema.string == "tspopt.job",
                   "unexpected schema \"" << schema.string << "\"");
  auto version =
      static_cast<int>(number_field(value, "schema_version", -1));
  TSPOPT_CHECK_MSG(version == kJobSchemaVersion,
                   "unsupported job schema_version " << version << " (want "
                                                     << kJobSchemaVersion
                                                     << ")");

  // Reject unknown members: a typoed field silently taking its default is
  // how deadline_ms ends up unenforced in production.
  static constexpr const char* kKnown[] = {
      "schema", "schema_version", "catalog", "name", "points",
      "engine", "priority",       "time_limit_seconds", "max_iterations",
      "deadline_ms", "seed", "devices", "k", "batchable", "idempotency_key",
      "trace_id", "parent_span"};
  for (const auto& [key, member] : value.object) {
    (void)member;
    bool known = false;
    for (const char* k : kKnown) known = known || key == k;
    TSPOPT_CHECK_MSG(known, "unknown job field \"" << key << "\"");
  }

  JobSpec spec;
  if (const obs::JsonValue* catalog = value.find("catalog")) {
    TSPOPT_CHECK_MSG(catalog->kind == obs::JsonValue::Kind::kString,
                     "\"catalog\" must be a string");
    spec.catalog = catalog->string;
    TSPOPT_CHECK_MSG(value.find("points") == nullptr,
                     "a job names a catalog instance OR inline points");
  } else {
    const obs::JsonValue& points = value.at("points");
    TSPOPT_CHECK_MSG(points.is_array() && points.array.size() >= 3,
                     "inline \"points\" must be an array of >= 3 [x,y] pairs");
    spec.points.reserve(points.array.size());
    for (const obs::JsonValue& p : points.array) {
      TSPOPT_CHECK_MSG(p.is_array() && p.array.size() == 2 &&
                           p.array[0].kind == obs::JsonValue::Kind::kNumber &&
                           p.array[1].kind == obs::JsonValue::Kind::kNumber,
                       "each point must be an [x, y] number pair");
      spec.points.push_back({static_cast<float>(p.array[0].number),
                             static_cast<float>(p.array[1].number)});
      TSPOPT_CHECK_MSG(std::isfinite(spec.points.back().x) &&
                           std::isfinite(spec.points.back().y),
                       "point coordinates must be finite");
    }
    if (const obs::JsonValue* name = value.find("name")) {
      TSPOPT_CHECK_MSG(name->kind == obs::JsonValue::Kind::kString,
                       "\"name\" must be a string");
      spec.instance_name = name->string;
    } else {
      spec.instance_name = "inline" + std::to_string(spec.points.size());
    }
  }

  if (const obs::JsonValue* engine = value.find("engine")) {
    TSPOPT_CHECK_MSG(engine->kind == obs::JsonValue::Kind::kString,
                     "\"engine\" must be a string");
    spec.engine = engine->string;
  }
  spec.priority = static_cast<std::int32_t>(
      integer_field(value, "priority", spec.priority));
  TSPOPT_CHECK_MSG(spec.priority >= 0 && spec.priority <= 9,
                   "priority must be in [0, 9], got " << spec.priority);
  spec.time_limit_seconds =
      number_field(value, "time_limit_seconds", spec.time_limit_seconds);
  TSPOPT_CHECK_MSG(spec.time_limit_seconds > 0.0,
                   "time_limit_seconds must be positive");
  spec.max_iterations =
      integer_field(value, "max_iterations", spec.max_iterations);
  spec.deadline_ms = number_field(value, "deadline_ms", spec.deadline_ms);
  std::int64_t seed = integer_field(
      value, "seed", static_cast<std::int64_t>(spec.seed));
  TSPOPT_CHECK_MSG(seed >= 0, "seed must be non-negative");
  spec.seed = static_cast<std::uint64_t>(seed);
  spec.devices =
      static_cast<std::int32_t>(integer_field(value, "devices", spec.devices));
  TSPOPT_CHECK_MSG(spec.devices >= 1 && spec.devices <= 64,
                   "devices must be in [1, 64]");
  spec.k = static_cast<std::int32_t>(integer_field(value, "k", spec.k));
  // Full validation (pruned engines only, k < n) happens at submit, where
  // the instance size is known; the wire layer rejects what it can.
  TSPOPT_CHECK_MSG(spec.k == 0 || spec.k >= 1,
                   "k must be >= 1 when present, got " << spec.k);
  if (const obs::JsonValue* batchable = value.find("batchable")) {
    TSPOPT_CHECK_MSG(batchable->kind == obs::JsonValue::Kind::kBool,
                     "\"batchable\" must be a boolean");
    spec.batchable = batchable->boolean;
  }
  if (const obs::JsonValue* key = value.find("idempotency_key")) {
    TSPOPT_CHECK_MSG(key->kind == obs::JsonValue::Kind::kString,
                     "\"idempotency_key\" must be a string");
    TSPOPT_CHECK_MSG(key->string.size() <= 256,
                     "\"idempotency_key\" must be <= 256 bytes");
    spec.idempotency_key = key->string;
  }
  if (const obs::JsonValue* trace = value.find("trace_id")) {
    TSPOPT_CHECK_MSG(trace->kind == obs::JsonValue::Kind::kString,
                     "\"trace_id\" must be a string");
    TSPOPT_CHECK_MSG(trace->string.size() <= 64,
                     "\"trace_id\" must be <= 64 bytes");
    for (char c : trace->string) {
      // Trace ids are stamped verbatim into log lines, trace args and
      // journal records; keep them printable and quote-free.
      TSPOPT_CHECK_MSG(c > 0x20 && c < 0x7F && c != '"' && c != '\\',
                       "\"trace_id\" must be printable ASCII without "
                       "quotes or backslashes");
    }
    spec.trace_id = trace->string;
  }
  std::int64_t parent_span = integer_field(value, "parent_span", 0);
  TSPOPT_CHECK_MSG(parent_span >= 0, "parent_span must be non-negative");
  spec.parent_span = static_cast<std::uint64_t>(parent_span);
  return spec;
}

void write_job_result(obs::JsonWriter& w, const JobResult& result) {
  w.begin_object();
  w.key("constructive_length").value(result.constructive_length);
  w.key("best_length").value(result.best_length);
  w.key("iterations").value(result.iterations);
  w.key("improvements").value(result.improvements);
  w.key("checks").value(result.checks);
  w.key("wall_seconds").value(result.wall_seconds);
  w.key("stopped").value(result.stopped);
  w.key("order").begin_array();
  for (std::int32_t city : result.order) w.value(city);
  w.end_array();
  if (!result.report_json.empty()) {
    w.key("report").raw_value(result.report_json);
  }
  w.end_object();
}

JobResult job_result_from_json(const obs::JsonValue& value) {
  TSPOPT_CHECK_MSG(value.is_object(), "job result must be a JSON object");
  JobResult result;
  result.constructive_length =
      integer_field(value, "constructive_length", 0);
  result.best_length = integer_field(value, "best_length", 0);
  result.iterations = integer_field(value, "iterations", 0);
  result.improvements = integer_field(value, "improvements", 0);
  result.checks =
      static_cast<std::uint64_t>(integer_field(value, "checks", 0));
  result.wall_seconds = number_field(value, "wall_seconds", 0.0);
  if (const obs::JsonValue* stopped = value.find("stopped")) {
    TSPOPT_CHECK_MSG(stopped->kind == obs::JsonValue::Kind::kBool,
                     "\"stopped\" must be a boolean");
    result.stopped = stopped->boolean;
  }
  if (const obs::JsonValue* order = value.find("order")) {
    TSPOPT_CHECK_MSG(order->is_array(), "\"order\" must be an array");
    result.order.reserve(order->array.size());
    for (const obs::JsonValue& city : order->array) {
      TSPOPT_CHECK_MSG(city.kind == obs::JsonValue::Kind::kNumber,
                       "\"order\" entries must be numbers");
      result.order.push_back(static_cast<std::int32_t>(city.number));
    }
  }
  if (const obs::JsonValue* report = value.find("report")) {
    // Re-render the embedded report verbatim so the journaled bytes and a
    // freshly produced result are indistinguishable to clients.
    obs::JsonWriter w;
    obs::write_json_value(w, *report);
    result.report_json = w.str();
  }
  return result;
}

void write_job_status(obs::JsonWriter& w, const Job& job) {
  w.begin_object();
  w.key("id").value(job.id());
  w.key("state").value(to_string(job.state()));
  w.key("instance").value(job.spec().inline_payload() ? job.spec().instance_name
                                                      : job.spec().catalog);
  w.key("engine").value(job.spec().engine);
  w.key("priority").value(job.spec().priority);
  std::int64_t best = job.best_length.load(std::memory_order_relaxed);
  if (best >= 0) w.key("best_length").value(best);
  w.key("iteration").value(job.iteration.load(std::memory_order_relaxed));
  w.key("attempts").value(job.attempts.load(std::memory_order_relaxed));
  std::uint64_t batch = job.batch_id.load(std::memory_order_relaxed);
  if (batch != 0) {
    w.key("batch_id").value(batch);
    w.key("batch_occupancy")
        .value(job.batch_occupancy.load(std::memory_order_relaxed));
  }
  if (!job.spec().trace_id.empty()) {
    w.key("trace_id").value(job.spec().trace_id);
  }
  double wait = job.wait_seconds.load(std::memory_order_relaxed);
  if (wait >= 0.0) w.key("wait_seconds").value(wait);
  double lease = job.lease_seconds.load(std::memory_order_relaxed);
  if (lease >= 0.0) w.key("lease_seconds").value(lease);
  double run = job.run_seconds.load(std::memory_order_relaxed);
  if (run >= 0.0) w.key("run_seconds").value(run);
  double settle = job.settle_seconds.load(std::memory_order_relaxed);
  if (settle >= 0.0) w.key("settle_seconds").value(settle);
  if (job.has_deadline()) w.key("deadline_ms").value(job.spec().deadline_ms);
  std::string error = job.error();
  if (!error.empty()) w.key("error").value(error);
  w.end_object();
}

}  // namespace tspopt::serve
