#include "serve/scheduler.hpp"

#include <algorithm>
#include <exception>
#include <filesystem>
#include <optional>
#include <utility>

#include "common/timer.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "solver/batch/batch_twoopt_gpu.hpp"
#include "solver/batch/batch_twoopt_simd.hpp"
#include "solver/batch/population_ils.hpp"
#include "solver/checkpoint.hpp"
#include "solver/constructive.hpp"
#include "solver/engine_factory.hpp"
#include "solver/ils.hpp"
#include "solver/twoopt_gpu.hpp"
#include "solver/twoopt_gpu_pruned.hpp"
#include "solver/twoopt_tiled.hpp"
#include "solver/obs_adapters.hpp"
#include "tsp/catalog.hpp"

namespace tspopt::serve {

namespace {

// One shared bucket layout for both serve latency histograms: queue waits
// are sub-millisecond under light load, job runs are seconds under heavy.
const std::vector<double> kLatencyBucketsUs = {
    100,    250,    500,     1000,    2500,    5000,     10000,    25000,
    50000,  100000, 250000,  500000,  1000000, 2500000,  5000000,  10000000};

bool is_gpu_engine(const std::string& name) {
  return name.rfind("gpu", 0) == 0;
}

// gpu-multi is the only engine class that spans a multi-device lease; the
// other gpu-* classes are honored exactly as requested on a one-device
// lease (fault tolerance for those comes from the scheduler's attempt
// retry on a fresh lease, not from an engine substitution).
bool is_multi_device_engine(const std::string& name) {
  return name == "gpu-multi";
}

// The engines that restrict 2-opt to k-nearest-neighbor candidate lists
// and therefore honor the job's optional `k` field.
bool is_pruned_engine(const std::string& name) {
  return name.find("pruned") != std::string::npos;
}

// Admission-time cap for batchable inline payloads: the TourBatch slab is
// max_batch padded tours of n+1 floats per coordinate axis, and a spec
// that cannot be staged at full occupancy must be rejected at the door,
// not when a batch happens to fill up. 2^24 floats (64 MiB per axis)
// comfortably covers the paper's largest instances at max_batch = 1 while
// bounding what one coalesced pass may pin.
constexpr std::size_t kMaxBatchSlabFloats = std::size_t{1} << 24;

// batch-gpu stages one tour per block in shared memory; its n cap is a
// device property. Admission validates against the pool's device model
// (one simulated device class per process today).
std::int32_t batch_gpu_city_cap() {
  static const std::int32_t cap = [] {
    simt::Device probe(simt::gtx680_cuda());
    return BatchTwoOptGpu::max_cities(probe);
  }();
  return cap;
}

}  // namespace

const std::vector<double>& Scheduler::latency_buckets_us() {
  return kLatencyBucketsUs;
}

struct Scheduler::Instruments {
  obs::Gauge& queue_depth;
  obs::Gauge& active_jobs;
  obs::Gauge& queue_oldest_age_ms;
  obs::Histogram& job_wait_us;
  obs::Histogram& job_run_us;
  // Per-phase pipeline latency, one labeled series per phase — the
  // Prometheus-side mirror of the /tracez per-job breakdown.
  obs::Histogram& phase_wait_us;
  obs::Histogram& phase_lease_us;
  obs::Histogram& phase_run_us;
  obs::Histogram& phase_settle_us;
  obs::Counter& accepted;
  obs::Counter& rejected_full;
  obs::Counter& rejected_invalid;
  obs::Counter& started;
  obs::Counter& finished;
  obs::Counter& failed;
  obs::Counter& cancelled;
  obs::Counter& expired;
  obs::Counter& retries;
  obs::Counter& recovered;
  obs::Counter& batches;
  obs::Counter& batched_jobs;
  obs::Histogram& batch_occupancy;

  explicit Instruments(obs::Registry& r)
      : queue_depth(r.gauge("serve.queue_depth")),
        active_jobs(r.gauge("serve.active_jobs")),
        queue_oldest_age_ms(r.gauge("serve.queue_oldest_age_ms")),
        job_wait_us(r.histogram("serve.job_wait_us", kLatencyBucketsUs)),
        job_run_us(r.histogram("serve.job_run_us", kLatencyBucketsUs)),
        phase_wait_us(r.histogram("serve.job_phase_us", kLatencyBucketsUs,
                                  {{"phase", "wait"}})),
        phase_lease_us(r.histogram("serve.job_phase_us", kLatencyBucketsUs,
                                   {{"phase", "lease"}})),
        phase_run_us(r.histogram("serve.job_phase_us", kLatencyBucketsUs,
                                 {{"phase", "run"}})),
        phase_settle_us(r.histogram("serve.job_phase_us", kLatencyBucketsUs,
                                    {{"phase", "settle"}})),
        accepted(r.counter("serve.jobs_accepted")),
        rejected_full(r.counter("serve.jobs_rejected", {{"reason", "full"}})),
        rejected_invalid(
            r.counter("serve.jobs_rejected", {{"reason", "invalid"}})),
        started(r.counter("serve.jobs_started")),
        finished(r.counter("serve.jobs_finished")),
        failed(r.counter("serve.jobs_failed")),
        cancelled(r.counter("serve.jobs_cancelled")),
        expired(r.counter("serve.jobs_expired")),
        retries(r.counter("serve.job_retries")),
        recovered(r.counter("serve.recovered_jobs")),
        batches(r.counter("serve.batches")),
        batched_jobs(r.counter("serve.batched_jobs")),
        batch_occupancy(r.histogram("serve.batch_occupancy",
                                    {1, 2, 4, 8, 16, 32, 64})) {}
};

Scheduler::Scheduler(simt::DevicePool& pool, SchedulerOptions options)
    : pool_(pool),
      options_(options),
      queue_(std::max<std::size_t>(1, options.queue_capacity)),
      batcher_(queue_, options.batcher),
      m_(std::make_unique<Instruments>(obs::Registry::global())) {
  TSPOPT_CHECK_MSG(options_.workers >= 1, "Scheduler needs >= 1 worker");
  TSPOPT_CHECK(options_.max_attempts >= 1);
  // Recovery runs to completion before the first worker exists, so a
  // replayed backlog is fully re-queued before anything can pop it.
  if (!options_.journal_dir.empty()) {
    journal_ =
        std::make_unique<Journal>(options_.journal_dir, options_.journal);
    recover_from_journal();
  }
  workers_.reserve(options_.workers);
  for (std::size_t w = 0; w < options_.workers; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

Scheduler::~Scheduler() { shutdown(/*drain_first=*/false); }

void Scheduler::recover_from_journal() {
  Journal::ReplayResult rep = journal_->open_and_replay();
  next_id_.store(rep.next_id, std::memory_order_relaxed);
  for (Journal::RecoveredJob& rj : rep.jobs) {
    bool resume = rj.state == JobState::kRunning;
    auto job = std::make_shared<Job>(rj.id, std::move(rj.spec));
    if (is_terminal(rj.state)) {
      // Settled before the crash: restore the retained result so clients
      // polling for it get the same bytes the crashed daemon would have
      // served. Re-enters the retention queue (oldest-first eviction).
      job->restore_terminal(rj.state, std::move(rj.result),
                            std::move(rj.error));
      std::lock_guard lock(jobs_mu_);
      jobs_[rj.id] = job;
      terminal_order_.push_back(rj.id);
      if (!job->spec().idempotency_key.empty()) {
        idempotency_[job->spec().idempotency_key] = rj.id;
      }
      continue;
    }
    // Queued or running at the crash: re-queue. `force` bypasses the
    // capacity check — every one of these was already accepted once, and
    // a restart must never lose an accepted job. Running jobs resume
    // from their spool checkpoint; the accepted_at clock (and so any
    // deadline) restarts at recovery time, the lenient choice.
    job->mark_recovered(resume, rj.attempts);
    {
      std::lock_guard lock(jobs_mu_);
      jobs_[rj.id] = job;
      if (!job->spec().idempotency_key.empty()) {
        idempotency_[job->spec().idempotency_key] = rj.id;
      }
    }
    {
      std::lock_guard lock(drain_mu_);
      ++live_jobs_;
    }
    queue_.push(job, /*force=*/true);
    n_recovered_.fetch_add(1, std::memory_order_relaxed);
    m_->recovered.add();
    obs::Log::global()
        .event(obs::LogLevel::kInfo, "job.recovered")
        .arg("id", rj.id)
        .arg("engine", job->spec().engine)
        .arg("resume", resume)
        .arg("attempts", rj.attempts);
  }
  m_->queue_depth.set(static_cast<double>(queue_.depth()));
}

Scheduler::Admission Scheduler::submit(JobSpec spec) {
  auto reject_invalid = [&](const std::string& why) {
    n_rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    m_->rejected_invalid.add();
    obs::Log::global()
        .event(obs::LogLevel::kWarn, "job.rejected")
        .arg("reason", "invalid")
        .arg("error", why)
        .arg("engine", spec.engine);
    return Admission{false, 0, 0.0, why};
  };

  const auto& names = EngineFactory::available();
  if (std::find(names.begin(), names.end(), spec.engine) == names.end()) {
    return reject_invalid("unknown engine \"" + spec.engine + "\"");
  }
  if (!spec.inline_payload()) {
    if (!find_catalog_entry(spec.catalog)) {
      return reject_invalid("unknown catalog instance \"" + spec.catalog +
                            "\"");
    }
  } else if (spec.points.size() < 3) {
    return reject_invalid("inline payload needs >= 3 points");
  }
  if (spec.devices < 1) return reject_invalid("devices must be >= 1");
  if (spec.devices > 1 && is_gpu_engine(spec.engine) &&
      !is_multi_device_engine(spec.engine)) {
    return reject_invalid("engine \"" + spec.engine +
                          "\" is single-device; use gpu-multi for a "
                          "multi-device lease");
  }
  if (spec.time_limit_seconds <= 0.0) {
    return reject_invalid("time_limit_seconds must be positive");
  }
  if (spec.k != 0) {
    if (!is_pruned_engine(spec.engine)) {
      return reject_invalid("k applies only to the pruned engines, not \"" +
                            spec.engine + "\"");
    }
    if (spec.k < 1) return reject_invalid("k must be >= 1");
    // A candidate list cannot include the city itself, so k caps at n-1.
    std::int32_t n = spec.inline_payload()
                         ? static_cast<std::int32_t>(spec.points.size())
                         : find_catalog_entry(spec.catalog)->n;
    if (spec.k >= n) {
      return reject_invalid("k must be < the instance size (" +
                            std::to_string(n) + ")");
    }
  }
  if (spec.batchable) {
    // Batch-shape admission: everything that could make this job
    // un-stageable inside a full coalesced batch is rejected here with a
    // typed "batch shape" error, so a queued batchable job can always
    // join any batch its key admits it to.
    if (!batchable_engine(spec.engine)) {
      return reject_invalid(
          "batch shape: engine \"" + spec.engine +
          "\" has no batch implementation (batchable engines: cpu-simd, "
          "gpu-small, batch-simd, batch-gpu)");
    }
    std::size_t n = spec.inline_payload()
                        ? spec.points.size()
                        : static_cast<std::size_t>(
                              find_catalog_entry(spec.catalog)->n);
    if (batch_engine_for(spec.engine) == "batch-gpu" &&
        n > static_cast<std::size_t>(batch_gpu_city_cap())) {
      return reject_invalid(
          "batch shape: n=" + std::to_string(n) +
          " exceeds batch-gpu's shared-memory tour capacity (" +
          std::to_string(batch_gpu_city_cap()) + " cities)");
    }
    std::size_t max_batch = std::max<std::size_t>(1, options_.batcher.max_batch);
    // TourBatch pads every tour slice to a 16-float boundary with a +1
    // wrap entry; mirror that here so admission matches staging exactly.
    std::size_t stride = ((n + 1 + 15) / 16) * 16;
    if (stride * max_batch > kMaxBatchSlabFloats) {
      return reject_invalid(
          "batch shape: n=" + std::to_string(n) + " at max_batch=" +
          std::to_string(max_batch) +
          " exceeds the batch staging limit of " +
          std::to_string(kMaxBatchSlabFloats) + " floats per axis");
    }
  }

  // Idempotent resubmit: a key matching a retained job (live or settled)
  // is answered with that job's id — the dedup path a client takes after
  // an ambiguous failure (timeout, dropped connection, daemon restart).
  if (!spec.idempotency_key.empty()) {
    std::lock_guard lock(jobs_mu_);
    auto it = idempotency_.find(spec.idempotency_key);
    if (it != idempotency_.end() && jobs_.count(it->second) != 0) {
      Admission dup{true, it->second, 0.0, ""};
      dup.deduped = true;
      return dup;
    }
  }

  auto job = std::make_shared<Job>(
      next_id_.fetch_add(1, std::memory_order_relaxed), std::move(spec));
  // Account the job and make it findable/cancellable *before* it becomes
  // poppable: a worker may otherwise run and settle a job whose id a
  // racing status/cancel cannot yet resolve. Rolled back on rejection.
  {
    std::lock_guard lock(drain_mu_);
    ++live_jobs_;
  }
  std::uint64_t dup_id = 0;
  {
    std::lock_guard lock(jobs_mu_);
    if (!job->spec().idempotency_key.empty()) {
      // emplace resolves the race two same-key submits lost above: the
      // second one finds the first's id already mapped (a mapping to an
      // evicted job is stale — reclaim it).
      auto [it, inserted] =
          idempotency_.emplace(job->spec().idempotency_key, job->id());
      if (!inserted) {
        if (jobs_.count(it->second) != 0) {
          dup_id = it->second;
        } else {
          it->second = job->id();
        }
      }
    }
    if (dup_id == 0) jobs_[job->id()] = job;
  }
  if (dup_id != 0) {
    {
      std::lock_guard lock(drain_mu_);
      TSPOPT_CHECK(live_jobs_ > 0);
      --live_jobs_;
    }
    drain_cv_.notify_all();
    Admission dup{true, dup_id, 0.0, ""};
    dup.deduped = true;
    return dup;
  }

  // The rejection rollback, claimed via the state machine: a cancel()
  // that raced in through the jobs_ window has already settled (and
  // accounted) the job, in which case only the response remains.
  auto rollback = [&] {
    if (job->try_transition(JobState::kQueued, JobState::kFailed)) {
      {
        std::lock_guard lock(jobs_mu_);
        jobs_.erase(job->id());
        const std::string& key = job->spec().idempotency_key;
        auto it = key.empty() ? idempotency_.end() : idempotency_.find(key);
        if (it != idempotency_.end() && it->second == job->id()) {
          idempotency_.erase(it);
        }
      }
      {
        std::lock_guard lock(drain_mu_);
        TSPOPT_CHECK(live_jobs_ > 0);
        --live_jobs_;
      }
      drain_cv_.notify_all();  // a concurrent drain() may be waiting on 0
    }
  };

  // Durability barrier: the job is only "accepted" once its record is in
  // the journal — a job we cannot make durable must not run, or a crash
  // would silently lose work the client was promised.
  if (journal_ != nullptr && !journal_->append_accepted(*job)) {
    rollback();
    n_rejected_invalid_.fetch_add(1, std::memory_order_relaxed);
    m_->rejected_invalid.add();
    obs::Log::global()
        .event(obs::LogLevel::kWarn, "job.rejected")
        .arg("reason", "journal")
        .arg("id", job->id());
    return Admission{false, 0, 0.0, "journal write failed"};
  }
  JobQueue::PushResult pushed = queue_.push(job);
  if (pushed != JobQueue::PushResult::kOk) {
    if (journal_ != nullptr) journal_->append_rejected(job->id());
    rollback();
    if (pushed == JobQueue::PushResult::kClosed) {
      return Admission{false, 0, estimate_retry_after_ms(),
                       "service draining"};
    }
    double retry_after = estimate_retry_after_ms();
    n_rejected_full_.fetch_add(1, std::memory_order_relaxed);
    m_->rejected_full.add();
    obs::Log::global()
        .event(obs::LogLevel::kInfo, "job.rejected")
        .arg("reason", "full")
        .arg("retry_after_ms", retry_after)
        .arg("queue_depth", static_cast<std::uint64_t>(queue_.depth()));
    return Admission{false, 0, retry_after, "queue full"};
  }
  n_accepted_.fetch_add(1, std::memory_order_relaxed);
  m_->accepted.add();
  m_->queue_depth.set(static_cast<double>(queue_.depth()));
  m_->queue_oldest_age_ms.set(queue_.oldest_age_ms());
  {
    obs::LogEvent e =
        obs::Log::global().event(obs::LogLevel::kInfo, "job.accepted");
    if (e) {
      e.arg("id", job->id())
          .arg("engine", job->spec().engine)
          .arg("instance", job->spec().inline_payload()
                               ? job->spec().instance_name
                               : job->spec().catalog)
          .arg("priority", job->spec().priority)
          .arg("deadline_ms", job->spec().deadline_ms);
      if (!job->spec().trace_id.empty()) {
        e.arg("trace_id", job->spec().trace_id);
      }
    }
  }
  return Admission{true, job->id(), 0.0, ""};
}

std::shared_ptr<const Job> Scheduler::find(std::uint64_t id) const {
  std::lock_guard lock(jobs_mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

bool Scheduler::forget(std::uint64_t id) {
  {
    std::lock_guard lock(jobs_mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end() || !is_terminal(it->second->state())) return false;
    const std::string& key = it->second->spec().idempotency_key;
    if (!key.empty()) {
      auto kit = idempotency_.find(key);
      if (kit != idempotency_.end() && kit->second == id) {
        idempotency_.erase(kit);
      }
    }
    jobs_.erase(it);
  }
  if (journal_ != nullptr) journal_->append_forgotten(id);
  return true;
}

bool Scheduler::cancel(std::uint64_t id) {
  std::shared_ptr<Job> job;
  {
    std::lock_guard lock(jobs_mu_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    job = it->second;
  }
  job->request_cancel();
  // Queued jobs resolve here; running jobs resolve at the worker's next
  // should_stop poll. Either way the request landed.
  if (job->try_transition(JobState::kQueued, JobState::kCancelled)) {
    settle(job, JobState::kCancelled);
    return true;
  }
  return !is_terminal(job->state()) || job->state() == JobState::kCancelled;
}

double Scheduler::estimate_retry_after_ms() const {
  double ema = ema_run_ms_.load(std::memory_order_relaxed);
  double per_slot = ema > 0.0 ? ema : options_.min_retry_after_ms;
  double backlog = static_cast<double>(queue_.depth()) + 1.0;
  double estimate = per_slot * backlog / static_cast<double>(options_.workers);
  return std::max(options_.min_retry_after_ms, estimate);
}

void Scheduler::note_run_seconds(double seconds) {
  double ms = seconds * 1e3;
  double prev = ema_run_ms_.load(std::memory_order_relaxed);
  ema_run_ms_.store(prev <= 0.0 ? ms : 0.8 * prev + 0.2 * ms,
                    std::memory_order_relaxed);
}

void Scheduler::settle(const std::shared_ptr<Job>& job, JobState terminal) {
  WallTimer settle_timer;
  const char* event = "job.finished";
  switch (terminal) {
    case JobState::kFinished:
      n_finished_.fetch_add(1, std::memory_order_relaxed);
      m_->finished.add();
      event = "job.finished";
      break;
    case JobState::kCancelled:
      n_cancelled_.fetch_add(1, std::memory_order_relaxed);
      m_->cancelled.add();
      event = "job.cancelled";
      break;
    case JobState::kExpired:
      n_expired_.fetch_add(1, std::memory_order_relaxed);
      m_->expired.add();
      event = "job.expired";
      break;
    case JobState::kFailed:
      n_failed_.fetch_add(1, std::memory_order_relaxed);
      m_->failed.add();
      event = "job.failed";
      break;
    default:
      break;
  }
  m_->queue_depth.set(static_cast<double>(queue_.depth()));
  if (journal_ != nullptr) {
    // Persist the terminal state (best-effort: the job already settled in
    // memory; a missed settle record re-runs the job after a crash, which
    // at-least-once semantics permit), and drop the spool checkpoint —
    // nothing will ever resume this job.
    journal_->append_settled(*job, terminal);
    std::error_code ec;
    std::filesystem::remove(journal_->checkpoint_path(job->id()), ec);
  }
  std::vector<std::uint64_t> evicted;
  {
    // Enter the job into the retention queue and evict beyond the cap, so
    // results stay retrievable for a while but never accumulate without
    // bound. Ids already forget()ten are skipped.
    std::lock_guard lock(jobs_mu_);
    terminal_order_.push_back(job->id());
    const std::size_t cap = std::max<std::size_t>(1, options_.max_retained_jobs);
    while (terminal_order_.size() > cap) {
      std::uint64_t oldest = terminal_order_.front();
      terminal_order_.pop_front();
      auto it = jobs_.find(oldest);
      if (it != jobs_.end() && is_terminal(it->second->state())) {
        const std::string& key = it->second->spec().idempotency_key;
        if (!key.empty()) {
          auto kit = idempotency_.find(key);
          if (kit != idempotency_.end() && kit->second == oldest) {
            idempotency_.erase(kit);
          }
        }
        jobs_.erase(it);
        evicted.push_back(oldest);
      }
    }
  }
  if (journal_ != nullptr) {
    for (std::uint64_t id : evicted) journal_->append_forgotten(id);
  }

  // Settle phase ends here: everything after is reporting, not work the
  // next job waits on.
  double settle_seconds = settle_timer.seconds();
  job->settle_seconds.store(settle_seconds, std::memory_order_relaxed);
  m_->phase_settle_us.observe(settle_seconds * 1e6);
  m_->queue_oldest_age_ms.set(queue_.oldest_age_ms());

  // Feed the /tracez ring: keep this job if the ring has room or it is
  // slower than the current fastest entry.
  {
    auto phase_ms = [](double seconds) {
      return seconds > 0.0 ? seconds * 1e3 : 0.0;
    };
    JobTraceSummary summary;
    summary.id = job->id();
    summary.trace_id = job->spec().trace_id;
    summary.engine = job->spec().engine;
    summary.state = terminal;
    summary.wait_ms = phase_ms(job->wait_seconds.load(std::memory_order_relaxed));
    summary.lease_ms =
        phase_ms(job->lease_seconds.load(std::memory_order_relaxed));
    summary.run_ms = phase_ms(job->run_seconds.load(std::memory_order_relaxed));
    summary.settle_ms = phase_ms(settle_seconds);
    summary.best_length = job->best_length.load(std::memory_order_relaxed);
    summary.batch_id = job->batch_id.load(std::memory_order_relaxed);
    summary.batch_occupancy =
        job->batch_occupancy.load(std::memory_order_relaxed);
    std::lock_guard lock(tracez_mu_);
    tracez_.push_back(std::move(summary));
    if (tracez_.size() > kTracezCapacity) {
      auto fastest = std::min_element(
          tracez_.begin(), tracez_.end(),
          [](const JobTraceSummary& a, const JobTraceSummary& b) {
            return a.total_ms() < b.total_ms();
          });
      tracez_.erase(fastest);
    }
  }

  {
    obs::LogEvent e = obs::Log::global().event(
        terminal == JobState::kFailed ? obs::LogLevel::kWarn
                                      : obs::LogLevel::kInfo,
        event);
    if (e) {
      e.arg("id", job->id()).arg("state", to_string(terminal));
      if (!job->spec().trace_id.empty()) {
        e.arg("trace_id", job->spec().trace_id);
      }
      std::int64_t best = job->best_length.load(std::memory_order_relaxed);
      if (best >= 0) e.arg("best", best);
      e.arg("iterations", job->iteration.load(std::memory_order_relaxed));
      double run = job->run_seconds.load(std::memory_order_relaxed);
      if (run >= 0.0) e.arg("run_seconds", run);
      double settle = job->settle_seconds.load(std::memory_order_relaxed);
      if (settle >= 0.0) e.arg("settle_seconds", settle);
      std::string error = job->error();
      if (!error.empty()) e.arg("error", error);
    }
  }
  {
    std::lock_guard lock(drain_mu_);
    TSPOPT_CHECK(live_jobs_ > 0);
    --live_jobs_;
  }
  drain_cv_.notify_all();
}

void Scheduler::worker_loop(std::size_t worker_index) {
  (void)worker_index;
  for (;;) {
    JobQueue::PopOutcome out = queue_.pop();
    if (out.discarded != nullptr) {
      m_->queue_depth.set(static_cast<double>(queue_.depth()));
      settle(out.discarded, out.discarded->state());
      continue;
    }
    if (out.job == nullptr) return;  // closed and drained
    if (options_.batcher.max_batch > 1 && spec_batchable(out.job->spec())) {
      run_batch(batcher_.collect(std::move(out.job)));
      continue;
    }
    run_job(out.job);
  }
}

bool Scheduler::begin_running(const std::shared_ptr<Job>& job) {
  m_->queue_depth.set(static_cast<double>(queue_.depth()));
  m_->queue_oldest_age_ms.set(queue_.oldest_age_ms());

  double wait_seconds = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            job->accepted_at())
                            .count();
  job->wait_seconds.store(wait_seconds, std::memory_order_relaxed);

  // Resolve races that landed between dequeue and start.
  if (job->cancel_requested() &&
      job->try_transition(JobState::kQueued, JobState::kCancelled)) {
    settle(job, JobState::kCancelled);
    return false;
  }
  if (job->deadline_passed() &&
      job->try_transition(JobState::kQueued, JobState::kExpired)) {
    settle(job, JobState::kExpired);
    return false;
  }
  if (!job->try_transition(JobState::kQueued, JobState::kRunning)) {
    return false;  // someone else already resolved it
  }

  m_->job_wait_us.observe(wait_seconds * 1e6);
  m_->phase_wait_us.observe(wait_seconds * 1e6);
  m_->started.add();
  active_.fetch_add(1, std::memory_order_relaxed);
  m_->active_jobs.set(static_cast<double>(active_.load()));
  {
    obs::LogEvent e =
        obs::Log::global().event(obs::LogLevel::kInfo, "job.started");
    if (e) {
      e.arg("id", job->id())
          .arg("engine", job->spec().engine)
          .arg("wait_seconds", wait_seconds);
      if (!job->spec().trace_id.empty()) {
        e.arg("trace_id", job->spec().trace_id);
      }
    }
  }

  obs::Tracer& tracer = obs::Tracer::global();
  // The queue wait already happened by the time a worker sees the job, so
  // it cannot be an RAII span — record it retroactively, ending now, so
  // the merged timeline shows wait -> lease -> run back to back.
  if (tracer.enabled() && wait_seconds > 0.0) {
    obs::TraceEvent wait_event;
    wait_event.name = "serve.job.wait";
    wait_event.category = "serve";
    wait_event.duration_ns = static_cast<std::int64_t>(wait_seconds * 1e9);
    wait_event.start_ns = tracer.now_ns() - wait_event.duration_ns;
    wait_event.tid = obs::current_thread_ordinal();
    wait_event.args.emplace_back("id", std::to_string(job->id()));
    if (!job->spec().trace_id.empty()) {
      wait_event.args.emplace_back(
          "trace_id", "\"" + obs::json_escape(job->spec().trace_id) + "\"");
    }
    tracer.record(std::move(wait_event));
  }
  return true;
}

void Scheduler::run_job(const std::shared_ptr<Job>& job) {
  if (!begin_running(job)) return;

  obs::Span span = obs::Tracer::global().span("serve.job", "serve");
  if (span) {
    span.arg("id", job->id());
    span.arg("engine", job->spec().engine);
    span.arg("priority", job->spec().priority);
    if (!job->spec().trace_id.empty()) {
      span.arg("trace_id", job->spec().trace_id);
    }
    if (job->spec().parent_span != 0) {
      span.arg("parent_span", job->spec().parent_span);
    }
  }

  WallTimer run_timer;
  JobState terminal = JobState::kFailed;
  // Recovered running jobs continue their attempt count so max_attempts
  // bounds total tries across restarts, not per incarnation.
  std::int32_t first_attempt =
      std::max<std::int32_t>(1, job->resume_requested()
                                    ? job->attempts.load() : 1);
  for (std::int32_t attempt = first_attempt;; ++attempt) {
    job->attempts.store(attempt, std::memory_order_relaxed);
    if (journal_ != nullptr) journal_->append_started(job->id(), attempt);
    try {
      terminal = execute_attempt(job, attempt);
      break;
    } catch (const std::exception& e) {
      bool stop = job->cancel_requested() ||
                  stop_all_.load(std::memory_order_relaxed);
      if (attempt >= options_.max_attempts || stop) {
        job->set_error(e.what());
        terminal = JobState::kFailed;
        break;
      }
      n_retries_.fetch_add(1, std::memory_order_relaxed);
      m_->retries.add();
      obs::Log::global()
          .event(obs::LogLevel::kWarn, "job.retry")
          .arg("id", job->id())
          .arg("attempt", attempt)
          .arg("error", e.what());
    }
  }
  double run_seconds = run_timer.seconds();
  job->run_seconds.store(run_seconds, std::memory_order_relaxed);
  m_->job_run_us.observe(run_seconds * 1e6);
  m_->phase_run_us.observe(run_seconds * 1e6);
  note_run_seconds(run_seconds);

  active_.fetch_sub(1, std::memory_order_relaxed);
  m_->active_jobs.set(static_cast<double>(active_.load()));
  job->try_transition(JobState::kRunning, terminal);
  settle(job, terminal);
}

void Scheduler::run_batch(std::vector<std::shared_ptr<Job>> batch) {
  if (batch.size() == 1) {
    // Nothing coalesced inside the linger window; the solo path is the
    // exact per-job pipeline the client would have gotten pre-batching.
    run_job(batch.front());
    return;
  }

  // Claim every member. Jobs that lost a cancel/deadline race settled
  // inside begin_running and drop out of the batch here.
  std::vector<std::shared_ptr<Job>> members;
  members.reserve(batch.size());
  for (std::shared_ptr<Job>& job : batch) {
    if (begin_running(job)) members.push_back(std::move(job));
  }
  if (members.empty()) return;

  const std::uint64_t batch_id =
      next_batch_id_.fetch_add(1, std::memory_order_relaxed);
  for (const std::shared_ptr<Job>& job : members) {
    job->batch_id.store(batch_id, std::memory_order_relaxed);
    job->batch_occupancy.store(static_cast<std::int32_t>(members.size()),
                               std::memory_order_relaxed);
  }
  n_batches_.fetch_add(1, std::memory_order_relaxed);
  n_batched_jobs_.fetch_add(members.size(), std::memory_order_relaxed);
  m_->batches.add();
  m_->batched_jobs.add(members.size());
  m_->batch_occupancy.observe(static_cast<double>(members.size()));

  // The parent span every member's work nests under: job-level trace
  // events carry the member ids; this one carries the batch identity.
  obs::Span span = obs::Tracer::global().span("serve.batch", "serve");
  if (span) {
    span.arg("batch_id", batch_id);
    span.arg("occupancy", static_cast<std::uint64_t>(members.size()));
    span.arg("key", batch_key(members.front()->spec()));
    span.arg("engine", members.front()->spec().engine);
  }
  {
    obs::LogEvent e =
        obs::Log::global().event(obs::LogLevel::kInfo, "batch.started");
    if (e) {
      e.arg("batch_id", batch_id)
          .arg("occupancy", static_cast<std::uint64_t>(members.size()))
          .arg("engine", members.front()->spec().engine);
    }
  }

  WallTimer run_timer;
  std::vector<JobState> terminals;
  try {
    terminals = execute_batch(members, batch_id);
  } catch (const std::exception& e) {
    // No batch-level retry: a fatal error fails every unsettled member in
    // one stroke (re-running B jobs to probe which member is poisonous
    // holds the lease B times longer than the client signed up for). The
    // journal still has each member as running, so at-least-once recovery
    // semantics are unchanged.
    terminals.assign(members.size(), JobState::kFailed);
    for (const std::shared_ptr<Job>& job : members) {
      if (job->error().empty()) job->set_error(e.what());
    }
    obs::Log::global()
        .event(obs::LogLevel::kWarn, "batch.failed")
        .arg("batch_id", batch_id)
        .arg("occupancy", static_cast<std::uint64_t>(members.size()))
        .arg("error", e.what());
  }
  double run_seconds = run_timer.seconds();
  // The EMA feeds per-job retry-after hints; a batch completes
  // members.size() jobs in one run, so amortize before averaging in.
  note_run_seconds(run_seconds / static_cast<double>(members.size()));

  for (std::size_t b = 0; b < members.size(); ++b) {
    const std::shared_ptr<Job>& job = members[b];
    double member_run = job->run_seconds.load(std::memory_order_relaxed);
    if (member_run < 0.0) {
      member_run = run_seconds;
      job->run_seconds.store(member_run, std::memory_order_relaxed);
    }
    m_->job_run_us.observe(member_run * 1e6);
    m_->phase_run_us.observe(member_run * 1e6);
    active_.fetch_sub(1, std::memory_order_relaxed);
    m_->active_jobs.set(static_cast<double>(active_.load()));
    job->try_transition(JobState::kRunning, terminals[b]);
    settle(job, terminals[b]);
  }
}

std::vector<JobState> Scheduler::execute_batch(
    const std::vector<std::shared_ptr<Job>>& members,
    std::uint64_t batch_id) {
  const JobSpec& lead = members.front()->spec();
  const std::string key = batch_key(lead);
  std::vector<JobState> terminals(members.size(), JobState::kFailed);

  // Defense in depth against a collection bug: a member whose shape
  // diverges from the lead's batch key fails individually with a typed
  // error; the rest of the batch still runs.
  std::vector<std::size_t> live;
  live.reserve(members.size());
  for (std::size_t b = 0; b < members.size(); ++b) {
    if (batch_key(members[b]->spec()) == key) {
      live.push_back(b);
      continue;
    }
    members[b]->set_error(
        "batch shape: member diverges from the batch key \"" + key + "\"");
    members[b]->run_seconds.store(0.0, std::memory_order_relaxed);
  }
  if (live.empty()) return terminals;

  Instance instance =
      lead.inline_payload()
          ? Instance(lead.instance_name, Metric::kEuc2D, lead.points)
          : make_catalog_instance(*find_catalog_entry(lead.catalog));

  for (std::size_t b : live) {
    std::int32_t attempt = members[b]->attempts.load() + 1;
    members[b]->attempts.store(attempt, std::memory_order_relaxed);
    if (journal_ != nullptr) {
      journal_->append_started(members[b]->id(), attempt);
    }
  }

  // One lease for the whole batch: that is the point — B gpu jobs on one
  // launch sequence instead of B serialized leases.
  const std::string batch_class = batch_engine_for(lead.engine);
  simt::DevicePool::Lease lease;
  std::unique_ptr<BatchTwoOptEngine> engine;
  if (batch_class == "batch-gpu") {
    WallTimer lease_timer;
    obs::Span lease_span =
        obs::Tracer::global().span("serve.batch.lease", "serve");
    if (lease_span) lease_span.arg("batch_id", batch_id);
    lease = pool_.acquire(1);
    lease_span.finish();
    TSPOPT_CHECK_MSG(lease, "device pool closed");
    double lease_seconds = lease_timer.seconds();
    for (std::size_t b : live) {
      members[b]->lease_seconds.store(lease_seconds,
                                      std::memory_order_relaxed);
    }
    m_->phase_lease_us.observe(lease_seconds * 1e6);
    simt::Device& device = *lease.devices().front();
    TSPOPT_CHECK_MSG(instance.n() <= BatchTwoOptGpu::max_cities(device),
                     "batch shape: n=" << instance.n()
                                       << " exceeds batch-gpu capacity on "
                                       << device.label());
    engine = std::make_unique<BatchTwoOptGpu>(device);
  } else {
    engine = std::make_unique<BatchTwoOptSimd>();
  }

  // Same constructive start as the solo path, shared by every member (it
  // is deterministic per instance); the seeds diverge the perturbations.
  Tour tour = instance.metric() == Metric::kExplicit
                  ? nearest_neighbor(instance)
                  : multiple_fragment(instance);
  std::int64_t constructive_length = tour.length(instance);
  std::vector<Tour> initial(live.size(), tour);

  // One PopulationIls member per job, carrying exactly the solo run's
  // budget and hooks. migrate_every = 0 keeps members independent, which
  // is what makes a member bit-identical to its solo run.
  std::vector<PopulationMemberOptions> mopts(live.size());
  std::vector<bool> deadline_clamped(live.size(), false);
  for (std::size_t i = 0; i < live.size(); ++i) {
    const std::shared_ptr<Job>& job = members[live[i]];
    const JobSpec& spec = job->spec();
    PopulationMemberOptions& mo = mopts[i];
    mo.seed = spec.seed;
    mo.max_iterations = spec.max_iterations;
    mo.time_limit_seconds = spec.time_limit_seconds;
    if (job->has_deadline()) {
      double remaining_s = job->deadline_remaining_ms() / 1e3;
      if (remaining_s < mo.time_limit_seconds) {
        mo.time_limit_seconds = std::max(0.0, remaining_s);
        deadline_clamped[i] = true;
      }
    }
    mo.should_stop = [this, job] {
      return job->cancel_requested() ||
             stop_all_.load(std::memory_order_relaxed) ||
             job->deadline_passed();
    };
    mo.on_progress = [job](const IlsProgress& p) {
      job->best_length.store(p.best_length, std::memory_order_relaxed);
      job->iteration.store(p.iteration, std::memory_order_relaxed);
    };
    job->best_length.store(constructive_length, std::memory_order_relaxed);
  }
  PopulationIlsOptions popts;
  popts.time_limit_seconds = -1.0;  // member budgets retire each member
  popts.migrate_every = 0;
  // Batches do not spool checkpoints: a crash re-runs the members fresh
  // from the journal (at-least-once), the same as a solo job that died
  // before its first checkpoint write.
  popts.checkpoint_path.clear();

  PopulationIlsResult result =
      population_ils(*engine, instance, std::move(initial), mopts, popts);

  for (std::size_t i = 0; i < live.size(); ++i) {
    const std::shared_ptr<Job>& job = members[live[i]];
    const JobSpec& spec = job->spec();
    const IlsResult& ils = result.members[i];
    job->best_length.store(ils.best_length, std::memory_order_relaxed);
    job->iteration.store(ils.iterations, std::memory_order_relaxed);
    job->run_seconds.store(ils.wall_seconds, std::memory_order_relaxed);

    JobResult jr;
    jr.constructive_length = constructive_length;
    jr.best_length = ils.best_length;
    jr.iterations = ils.iterations;
    jr.improvements = ils.improvements;
    jr.checks = ils.checks;
    jr.wall_seconds = ils.wall_seconds;
    jr.stopped = ils.stopped;
    jr.order.assign(ils.best.order().begin(), ils.best.order().end());

    obs::RunReport report;
    describe_environment(report);
    report.set_run("job_id", std::to_string(job->id()));
    report.set_instance(instance.name(), instance.n(),
                        to_string(instance.metric()));
    report.set_engine(engine->name());
    report.set_config("requested_engine", spec.engine);
    report.set_config("priority", std::to_string(spec.priority));
    report.set_config("seed", std::to_string(spec.seed));
    report.set_config("attempt", std::to_string(job->attempts.load()));
    report.set_config("batch_id", std::to_string(batch_id));
    report.set_config("batch_occupancy",
                      std::to_string(job->batch_occupancy.load()));
    report_ils(report, ils);
    jr.report_json = report.to_json();
    job->set_result(std::move(jr));

    // Same terminal classification as the solo path, per member.
    if (job->cancel_requested()) {
      terminals[live[i]] = JobState::kCancelled;
    } else if ((ils.stopped || deadline_clamped[i]) &&
               job->deadline_passed()) {
      terminals[live[i]] = JobState::kExpired;
    } else {
      terminals[live[i]] = JobState::kFinished;
    }
  }
  return terminals;
}

JobState Scheduler::execute_attempt(const std::shared_ptr<Job>& job,
                                    std::int32_t attempt) {
  const JobSpec& spec = job->spec();

  Instance instance =
      spec.inline_payload()
          ? Instance(spec.instance_name, Metric::kEuc2D, spec.points)
          : make_catalog_instance(*find_catalog_entry(spec.catalog));

  // Per-job engine, honoring the requested engine class. gpu-multi runs
  // behind a per-job TwoOptMultiDevice over a fresh multi-device lease,
  // so fault retry/quarantine state is scoped to this job (and this
  // attempt) — a card that faults here re-enters the pool healthy for
  // the next job. The single-device gpu classes build exactly the engine
  // the client asked for on a one-device lease; their fault tolerance is
  // the scheduler's attempt retry on a fresh lease.
  simt::DevicePool::Lease lease;
  std::unique_ptr<TwoOptMultiDevice> multi;
  EngineFactory factory(&instance, spec.k != 0
                                       ? spec.k
                                       : EngineFactory::kDefaultNeighbors);
  std::unique_ptr<TwoOptEngine> engine;
  // Lease acquisition is its own traced/timed phase: under device
  // contention this is where jobs stall, and the wait histogram alone
  // cannot tell queue pressure from device pressure apart.
  auto acquire_lease = [&](std::size_t count) {
    WallTimer lease_timer;
    obs::Span lease_span =
        obs::Tracer::global().span("serve.job.lease", "serve");
    if (lease_span) {
      lease_span.arg("id", job->id());
      lease_span.arg("devices", static_cast<std::uint64_t>(count));
      if (!spec.trace_id.empty()) lease_span.arg("trace_id", spec.trace_id);
    }
    simt::DevicePool::Lease acquired = pool_.acquire(count);
    lease_span.finish();
    double lease_seconds = lease_timer.seconds();
    job->lease_seconds.store(lease_seconds, std::memory_order_relaxed);
    m_->phase_lease_us.observe(lease_seconds * 1e6);
    return acquired;
  };
  if (is_multi_device_engine(spec.engine)) {
    std::size_t want =
        std::max<std::size_t>(2, static_cast<std::size_t>(spec.devices));
    lease = acquire_lease(want);
    TSPOPT_CHECK_MSG(lease, "device pool closed");
    std::vector<simt::Device*> devices(lease.devices().begin(),
                                       lease.devices().end());
    multi = std::make_unique<TwoOptMultiDevice>(devices, 0, options_.multi);
  } else if (is_gpu_engine(spec.engine)) {
    lease = acquire_lease(1);
    TSPOPT_CHECK_MSG(lease, "device pool closed");
    simt::Device& device = *lease.devices().front();
    if (spec.engine == "gpu-small") {
      engine = std::make_unique<TwoOptGpuSmall>(device);
    } else if (spec.engine == "gpu-small-indirect") {
      engine = std::make_unique<TwoOptGpuSmall>(device, simt::LaunchConfig{},
                                                false);
    } else if (spec.engine == "gpu-tiled") {
      engine = std::make_unique<TwoOptGpuTiled>(device);
    } else if (spec.engine == "gpu-pruned") {
      // Candidate lists come from the factory (sized by the job's k) but
      // the engine runs on the leased device, like the other gpu classes.
      engine =
          std::make_unique<TwoOptGpuPruned>(device, factory.neighbor_lists());
    } else {
      TSPOPT_CHECK_MSG(false, "unknown gpu engine \"" << spec.engine << "\"");
    }
  } else {
    engine = factory.create(spec.engine);
  }
  TwoOptEngine& active_engine = multi ? *multi : *engine;

  IlsOptions opts;
  opts.seed = spec.seed;
  opts.max_iterations = spec.max_iterations;
  opts.time_limit_seconds = spec.time_limit_seconds;
  // Clamp the budget to the deadline so an over-deadline job never holds
  // its device lease past the wall. A clamped run that then consumes the
  // whole remainder ended because of the deadline, not its own budget —
  // remember that for the terminal-state classification below.
  bool deadline_clamped = false;
  if (job->has_deadline()) {
    double remaining_s = job->deadline_remaining_ms() / 1e3;
    if (remaining_s < opts.time_limit_seconds) {
      opts.time_limit_seconds = std::max(0.0, remaining_s);
      deadline_clamped = true;
    }
  }
  opts.should_stop = [this, &job] {
    return job->cancel_requested() ||
           stop_all_.load(std::memory_order_relaxed) || job->deadline_passed();
  };
  opts.on_progress = [&job](const IlsProgress& p) {
    job->best_length.store(p.best_length, std::memory_order_relaxed);
    job->iteration.store(p.iteration, std::memory_order_relaxed);
  };
  // With a journal, the ILS loop state spools into dir/spool/job-<id>.ckpt
  // so a crashed daemon's restart resumes this job instead of redoing it.
  if (journal_ != nullptr && options_.checkpoint_every_iterations > 0) {
    opts.checkpoint_path = journal_->checkpoint_path(job->id());
    opts.checkpoint_every = options_.checkpoint_every_iterations;
  }

  // A job journaled as running resumes from its latest spool checkpoint:
  // same RNG position, same incumbent — under an iteration budget the
  // continuation is bit-identical to the run that was never killed. No
  // checkpoint on disk (crash before the first write) or a checkpoint
  // that fails validation means a fresh run; attempt retries after an
  // engine fault also run fresh (the checkpoint may embed the fault).
  std::optional<IlsResult> run;
  std::int64_t constructive_length = 0;
  if (journal_ != nullptr && job->take_resume() &&
      std::filesystem::exists(journal_->checkpoint_path(job->id()))) {
    try {
      IlsCheckpoint ckpt =
          load_ils_checkpoint(journal_->checkpoint_path(job->id()));
      constructive_length =
          ckpt.trace.empty() ? ckpt.best_length : ckpt.trace.front().length;
      job->best_length.store(ckpt.best_length, std::memory_order_relaxed);
      job->iteration.store(ckpt.iterations, std::memory_order_relaxed);
      obs::Log::global()
          .event(obs::LogLevel::kInfo, "job.resumed")
          .arg("id", job->id())
          .arg("iteration", ckpt.iterations)
          .arg("best", ckpt.best_length);
      run = iterated_local_search_resume(active_engine, instance, ckpt, opts);
    } catch (const CheckError& e) {
      obs::Log::global()
          .event(obs::LogLevel::kWarn, "job.checkpoint_invalid")
          .arg("id", job->id())
          .arg("error", e.what());
    }
  }
  if (!run.has_value()) {
    Tour tour = instance.metric() == Metric::kExplicit
                    ? nearest_neighbor(instance)
                    : multiple_fragment(instance);
    constructive_length = tour.length(instance);
    job->best_length.store(constructive_length, std::memory_order_relaxed);
    run = iterated_local_search(active_engine, instance, tour, opts);
  }
  IlsResult& ils = *run;
  job->best_length.store(ils.best_length, std::memory_order_relaxed);
  job->iteration.store(ils.iterations, std::memory_order_relaxed);

  JobResult result;
  result.constructive_length = constructive_length;
  result.best_length = ils.best_length;
  result.iterations = ils.iterations;
  result.improvements = ils.improvements;
  result.checks = ils.checks;
  result.wall_seconds = ils.wall_seconds;
  result.stopped = ils.stopped;
  result.order.assign(ils.best.order().begin(), ils.best.order().end());

  obs::RunReport report;
  describe_environment(report);
  report.set_run("job_id", std::to_string(job->id()));
  report.set_instance(instance.name(), instance.n(),
                      to_string(instance.metric()));
  report.set_engine(active_engine.name());
  report.set_config("requested_engine", spec.engine);
  report.set_config("priority", std::to_string(spec.priority));
  report.set_config("seed", std::to_string(spec.seed));
  report.set_config("attempt", std::to_string(attempt));
  report_ils(report, ils);
  if (multi) report_multi_device(report, *multi);
  result.report_json = report.to_json();
  job->set_result(std::move(result));

  // Classify the ending: a cancel or an over-deadline stop is not a
  // completed job even though a best tour exists.
  if (job->cancel_requested()) return JobState::kCancelled;
  // Expired: the stop hook fired on the deadline, or the deadline-clamped
  // budget ran dry (an iteration-capped run can still finish early inside
  // the clamp — then the deadline has not passed and the job completed).
  if ((ils.stopped || deadline_clamped) && job->deadline_passed()) {
    return JobState::kExpired;
  }
  return JobState::kFinished;
}

Scheduler::Stats Scheduler::stats() const {
  Stats s;
  s.accepted = n_accepted_.load(std::memory_order_relaxed);
  s.rejected_full = n_rejected_full_.load(std::memory_order_relaxed);
  s.rejected_invalid = n_rejected_invalid_.load(std::memory_order_relaxed);
  s.finished = n_finished_.load(std::memory_order_relaxed);
  s.failed = n_failed_.load(std::memory_order_relaxed);
  s.cancelled = n_cancelled_.load(std::memory_order_relaxed);
  s.expired = n_expired_.load(std::memory_order_relaxed);
  s.retries = n_retries_.load(std::memory_order_relaxed);
  s.recovered = n_recovered_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.batched_jobs = n_batched_jobs_.load(std::memory_order_relaxed);
  s.queue_depth = queue_.depth();
  s.active_jobs = active_.load(std::memory_order_relaxed);
  s.workers = options_.workers;
  s.devices = pool_.size();
  s.devices_available = pool_.available();
  return s;
}

std::vector<Scheduler::JobTraceSummary> Scheduler::slowest_settled() const {
  std::vector<JobTraceSummary> ring;
  {
    std::lock_guard lock(tracez_mu_);
    ring = tracez_;
  }
  std::sort(ring.begin(), ring.end(),
            [](const JobTraceSummary& a, const JobTraceSummary& b) {
              if (a.total_ms() != b.total_ms()) {
                return a.total_ms() > b.total_ms();
              }
              return a.id < b.id;
            });
  return ring;
}

std::vector<std::shared_ptr<const Job>> Scheduler::active_snapshot() const {
  std::vector<std::shared_ptr<const Job>> live;
  {
    std::lock_guard lock(jobs_mu_);
    for (const auto& [id, job] : jobs_) {
      (void)id;
      if (!is_terminal(job->state())) live.push_back(job);
    }
  }
  std::sort(live.begin(), live.end(),
            [](const std::shared_ptr<const Job>& a,
               const std::shared_ptr<const Job>& b) { return a->id() < b->id(); });
  return live;
}

Scheduler::Readiness Scheduler::readiness() const {
  // Order matters for the reason string: a draining daemon with a wedged
  // journal should say "draining" — that is the operator-visible intent.
  if (queue_.closed()) return {false, "draining"};
  if (journal_ != nullptr && !journal_->healthy()) {
    return {false, "journal unhealthy"};
  }
  if (pool_.closed()) return {false, "device pool closed"};
  return {true, ""};
}

void Scheduler::drain() {
  queue_.close();
  std::unique_lock lock(drain_mu_);
  drain_cv_.wait(lock, [&] { return live_jobs_ == 0; });
}

void Scheduler::shutdown(bool drain_first) {
  if (shut_down_.exchange(true)) return;
  if (drain_first) {
    drain();
  } else {
    stop_all_.store(true, std::memory_order_relaxed);
    queue_.close_now();
    std::unique_lock lock(drain_mu_);
    drain_cv_.wait(lock, [&] { return live_jobs_ == 0; });
  }
  workers_.clear();  // jthread join
}

}  // namespace tspopt::serve
