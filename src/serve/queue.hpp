// Bounded, priority-aware job queue with admission control.
//
// The queue is the backpressure point of the solve service: capacity is
// fixed at construction, and a push against a full queue is *rejected*
// (the daemon turns that into a retry-after response) instead of blocking
// the submitting connection or growing without bound. Within the queue,
// strict priority order (0 before 1 before 2, ...) with FIFO inside each
// priority class — a starving low-priority job is the operator's policy
// decision, not the queue's.
//
// Lifecycle interplay: cancellation and deadline expiry mark the Job;
// pop() discards marked jobs (reporting them via the PopOutcome) so
// workers never spend a device lease on a job nobody wants. close()
// stops admission while letting pop() drain what is already queued —
// the SIGTERM drain path — and close_now() additionally discards the
// backlog for fast teardown.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/job.hpp"

namespace tspopt::serve {

class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity);

  // Admission control: a full or closed queue rejects (the job is NOT
  // queued; callers own the rejection response) — the two are
  // distinguished so a submit racing a drain reads "service draining",
  // not "queue full, retry later". FIFO within the job's priority class
  // on acceptance. `force` bypasses the capacity check (never the closed
  // check): journal recovery must re-queue every previously accepted job
  // even when there are more of them than the configured capacity —
  // rejecting at restart would turn a crash into silent job loss.
  enum class PushResult { kOk, kFull, kClosed };
  PushResult push(const std::shared_ptr<Job>& job, bool force = false);

  // Dequeue outcome: either a job to run, a discarded job (cancelled /
  // expired while queued — already transitioned, caller only accounts for
  // it), or queue-closed-and-empty (job == nullptr, discarded == nullptr).
  struct PopOutcome {
    std::shared_ptr<Job> job;        // run this
    std::shared_ptr<Job> discarded;  // or account for this and pop again
  };

  // Block until a job, a discard, or drained-after-close. Discards are
  // returned one at a time so the scheduler can log/count each.
  PopOutcome pop();

  // Non-blocking selective dequeue for the micro-batcher: remove and
  // return up to `max` still-queued jobs satisfying `pred`, scanning in
  // priority-then-FIFO order. Jobs already marked cancelled/expired are
  // left in place for pop()'s lazy-discard accounting; a matching job may
  // jump ahead of a non-matching higher-priority one — that is the
  // batching trade (it was going to run in the same engine pass anyway).
  std::vector<std::shared_ptr<Job>> try_pop_matching(
      const std::function<bool(const Job&)>& pred, std::size_t max);

  // Stop admission; pop() keeps draining the backlog, then reports empty.
  void close();
  // Stop admission AND drop the backlog: every queued job transitions to
  // kCancelled and is handed out as a discard before pop() reports empty.
  void close_now();

  std::size_t depth() const;
  std::size_t capacity() const { return capacity_; }
  bool closed() const;

  // Age of the oldest still-queued job in milliseconds (0 when empty) —
  // the queue-pressure signal behind the serve.queue_oldest_age_ms gauge
  // and the /statusz "oldest_age_ms" field. O(depth) scan; the queue is
  // capacity-bounded, so this stays cheap even from a scrape handler.
  double oldest_age_ms() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  // priority -> FIFO of jobs. Entries stay until popped; cancelled jobs
  // are lazily discarded at pop so cancel() stays O(1).
  std::map<std::int32_t, std::deque<std::shared_ptr<Job>>> buckets_;
  std::size_t depth_ = 0;
  bool closed_ = false;
};

}  // namespace tspopt::serve
