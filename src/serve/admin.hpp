// The tspoptd HTTP admin plane: /metrics, /healthz, /readyz, /statusz,
// /tracez.
//
// mount_admin() registers the five operational endpoints on an
// obs::HttpServer over a running Scheduler. The split of the three probe
// endpoints follows the usual orchestration contract:
//
//   /healthz  — liveness: the process is up and its admin loop answers.
//               Always 200 while the server runs.
//   /readyz   — readiness: the service can accept, durably record and
//               eventually run a job. 503 with the failing leg named in
//               the body when the daemon is draining (SIGTERM), the
//               journal's last append/fsync failed, or the device pool is
//               closed. A load balancer stops routing here first.
//   /statusz  — the human/debug view: run identity, uptime, queue depth
//               and oldest-age, scheduler counters, per-phase latency
//               quantiles (count/p50/p99 from the serve.job_phase_us
//               histograms), journal segment stats, and every active job
//               (with its distributed trace id) as JSON.
//   /tracez   — the slowest settled jobs (the scheduler's tracez ring)
//               with their per-phase wait/lease/run/settle breakdown;
//               `?n=` limits the count.
//   /metrics  — the live Prometheus text exposition of the global
//               registry (same bytes a TSPOPT_PROM file scrape gets, but
//               pull-based and always current).
//   /profilez — on-demand CPU profile of the live daemon:
//               `?seconds=N[&hz=H]` runs a sampling-profiler capture
//               (obs/profiler) and answers with collapsed stacks,
//               flamegraph.pl-ready. Deferred on the admin loop, so
//               /healthz and /readyz stay live during the capture; at
//               most one capture runs at a time (the second asks get
//               503); a dropped connection cancels the capture.
//
// Handlers run on the HTTP server's thread and only read scheduler state
// through its thread-safe accessors; everything referenced by the
// AdminContext must outlive the server.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>

#include "obs/http.hpp"
#include "serve/scheduler.hpp"

namespace tspopt::serve {

struct AdminContext {
  Scheduler* scheduler = nullptr;  // required; must outlive the server

  // Optional extra not-ready signal (the daemon flips this the moment
  // stop() begins, before the queue is closed, so probes see the drain
  // with no window). Null = rely on scheduler->readiness() alone.
  std::function<bool()> draining;

  // Daemon start time, for /statusz uptime and started_at.
  std::chrono::system_clock::time_point started_at{};
  std::chrono::steady_clock::time_point started_steady{};

  std::uint16_t serve_port = 0;  // the JSON protocol port, for /statusz

  // Longest capture /profilez?seconds=N will honor (requests are clamped
  // to it); <= 0 disables the endpoint entirely (it answers 404).
  double profilez_max_seconds = 60.0;
};

void mount_admin(obs::HttpServer& server, AdminContext context);

}  // namespace tspopt::serve
