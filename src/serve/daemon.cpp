#include "serve/daemon.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/check.hpp"
#include "obs/log.hpp"
#include "obs/runinfo.hpp"
#include "serve/admin.hpp"
#include "solver/engine_factory.hpp"

namespace tspopt::serve {

namespace {

std::string error_response(const std::string& message,
                           double retry_after_ms = 0.0) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("ok").value(false);
  w.key("error").value(message);
  if (retry_after_ms > 0.0) w.key("retry_after_ms").value(retry_after_ms);
  w.end_object();
  return w.str();
}

std::uint64_t id_field(const obs::JsonValue& request) {
  const obs::JsonValue& id = request.at("id");
  TSPOPT_CHECK_MSG(id.kind == obs::JsonValue::Kind::kNumber && id.number >= 1,
                   "\"id\" must be a positive number");
  return static_cast<std::uint64_t>(id.number);
}

void write_stats(obs::JsonWriter& w, const Scheduler::Stats& s) {
  w.begin_object();
  w.key("accepted").value(s.accepted);
  w.key("rejected_full").value(s.rejected_full);
  w.key("rejected_invalid").value(s.rejected_invalid);
  w.key("finished").value(s.finished);
  w.key("failed").value(s.failed);
  w.key("cancelled").value(s.cancelled);
  w.key("expired").value(s.expired);
  w.key("retries").value(s.retries);
  w.key("recovered").value(s.recovered);
  w.key("batches").value(s.batches);
  w.key("batched_jobs").value(s.batched_jobs);
  w.key("queue_depth").value(static_cast<std::uint64_t>(s.queue_depth));
  w.key("active_jobs").value(static_cast<std::uint64_t>(s.active_jobs));
  w.key("workers").value(static_cast<std::uint64_t>(s.workers));
  w.key("devices").value(static_cast<std::uint64_t>(s.devices));
  w.key("devices_available")
      .value(static_cast<std::uint64_t>(s.devices_available));
  w.end_object();
}

}  // namespace

std::string handle_request(Scheduler& scheduler, const std::string& line) {
  try {
    obs::JsonValue request = obs::json_parse(line);
    TSPOPT_CHECK_MSG(request.is_object(), "request must be a JSON object");
    const obs::JsonValue& verb_value = request.at("verb");
    TSPOPT_CHECK_MSG(verb_value.kind == obs::JsonValue::Kind::kString,
                     "\"verb\" must be a string");
    const std::string& verb = verb_value.string;

    if (verb == "ping") {
      obs::JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("run").value(obs::run_id());
      w.end_object();
      return w.str();
    }
    if (verb == "submit") {
      JobSpec spec = job_spec_from_json(request.at("job"));
      // Echo the trace id so the submitting side's printed acceptance
      // carries the correlation handle even when the daemon minted
      // nothing (the id is client-minted; the echo is confirmation).
      std::string trace_id = spec.trace_id;
      Scheduler::Admission admission = scheduler.submit(std::move(spec));
      if (!admission.accepted) {
        return error_response(admission.error, admission.retry_after_ms);
      }
      obs::JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("id").value(admission.id);
      if (!trace_id.empty()) w.key("trace_id").value(trace_id);
      if (admission.deduped) w.key("deduped").value(true);
      w.end_object();
      return w.str();
    }
    if (verb == "status" || verb == "result") {
      std::uint64_t id = id_field(request);
      std::shared_ptr<const Job> job = scheduler.find(id);
      if (job == nullptr) {
        return error_response("unknown job id " + std::to_string(id));
      }
      obs::JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("job");
      write_job_status(w, *job);
      if (verb == "result") {
        if (!is_terminal(job->state())) {
          return error_response("job " + std::to_string(id) +
                                " is not finished (state " +
                                to_string(job->state()) + ")");
        }
        JobResult result = job->result();
        if (!result.order.empty()) {
          w.key("result");
          write_job_result(w, result);
        }
      }
      w.end_object();
      return w.str();
    }
    if (verb == "cancel") {
      std::uint64_t id = id_field(request);
      bool cancelled = scheduler.cancel(id);
      obs::JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("cancelled").value(cancelled);
      w.end_object();
      return w.str();
    }
    if (verb == "forget") {
      std::uint64_t id = id_field(request);
      bool forgotten = scheduler.forget(id);
      obs::JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("forgotten").value(forgotten);
      w.end_object();
      return w.str();
    }
    if (verb == "stats") {
      obs::JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("run").value(obs::run_id());
      w.key("stats");
      write_stats(w, scheduler.stats());
      if (const Journal* journal = scheduler.journal()) {
        Journal::Stats js = journal->stats();
        w.key("journal").begin_object();
        w.key("dir").value(journal->dir());
        w.key("appends").value(js.appends);
        w.key("append_errors").value(js.append_errors);
        w.key("bytes").value(js.bytes);
        w.key("fsyncs").value(js.fsyncs);
        w.key("fsync_errors").value(js.fsync_errors);
        w.key("rotations").value(js.rotations);
        w.key("torn_tails").value(js.torn_tails);
        w.key("live_jobs").value(js.live_jobs);
        w.key("settled_jobs").value(js.settled_jobs);
        w.end_object();
      }
      w.end_object();
      return w.str();
    }
    if (verb == "engines") {
      obs::JsonWriter w;
      w.begin_object();
      w.key("ok").value(true);
      w.key("engines").begin_array();
      for (const EngineFactory::EngineInfo& info : EngineFactory::roster()) {
        w.begin_object();
        w.key("name").value(info.name);
        w.key("description").value(info.description);
        w.end_object();
      }
      w.end_array();
      w.end_object();
      return w.str();
    }
    return error_response("unknown verb \"" + verb + "\"");
  } catch (const std::exception& e) {
    return error_response(e.what());
  }
}

Daemon::Daemon(simt::DevicePool& pool, DaemonOptions options)
    : options_(std::move(options)),
      scheduler_(std::make_unique<Scheduler>(pool, options_.scheduler)) {}

Daemon::~Daemon() { stop(/*drain_first=*/false); }

void Daemon::start() {
  if (running_.load(std::memory_order_acquire)) return;
  TSPOPT_CHECK_MSG(!stopped_.load(), "Daemon cannot be restarted");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  TSPOPT_CHECK_MSG(listen_fd_ >= 0,
                   "socket() failed: " << std::strerror(errno));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  TSPOPT_CHECK_MSG(
      ::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) == 1,
      "invalid listen address \"" << options_.host << "\"");
  TSPOPT_CHECK_MSG(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                          sizeof addr) == 0,
                   "bind(" << options_.host << ":" << options_.port
                           << ") failed: " << std::strerror(errno));
  TSPOPT_CHECK_MSG(::listen(listen_fd_, options_.listen_backlog) == 0,
                   "listen() failed: " << std::strerror(errno));

  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  TSPOPT_CHECK(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                             &bound_len) == 0);
  port_ = ntohs(bound.sin_port);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::jthread([this] { accept_loop(); });

  if (options_.admin_port >= 0) {
    obs::HttpServer::Options admin_options;
    admin_options.host = options_.host;
    admin_options.port = static_cast<std::uint16_t>(options_.admin_port);
    admin_ = std::make_unique<obs::HttpServer>(admin_options);
    AdminContext admin_context;
    admin_context.scheduler = scheduler_.get();
    // stopping_ flips at the very top of stop(), before the queue closes,
    // so /readyz reports the drain with no ready->gone window.
    admin_context.draining = [this] {
      return stopping_.load(std::memory_order_acquire);
    };
    admin_context.started_at = std::chrono::system_clock::now();
    admin_context.started_steady = std::chrono::steady_clock::now();
    admin_context.serve_port = port_;
    admin_context.profilez_max_seconds = options_.profilez_max_seconds;
    mount_admin(*admin_, std::move(admin_context));
    admin_->start();
    obs::Log::global()
        .event(obs::LogLevel::kInfo, "daemon.admin")
        .arg("host", options_.host)
        .arg("port", static_cast<std::int64_t>(admin_->port()));
  }

  obs::Log::global()
      .event(obs::LogLevel::kInfo, "daemon.start")
      .arg("host", options_.host)
      .arg("port", static_cast<std::int64_t>(port_))
      .arg("workers",
           static_cast<std::uint64_t>(options_.scheduler.workers));
}

void Daemon::accept_loop() {
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return;
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout, EINTR: re-check the stop flag
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(conns_mu_);
    // Reap connections whose handler already exited (and closed its fd),
    // so conns_ tracks live clients only. The joins are instant: `done`
    // flips as the handler's last statement.
    for (auto it = conns_.begin(); it != conns_.end();) {
      it = it->done.load(std::memory_order_acquire) ? conns_.erase(it) : ++it;
    }
    conns_.emplace_back();
    Connection& conn = conns_.back();
    conn.fd = fd;
    conn.thread = std::jthread([this, &conn] { serve_connection(conn); });
  }
}

namespace {

// Best-effort blocking send of a full buffer; false on any socket error.
bool send_all(int fd, const std::string& data) {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    ssize_t sent = ::send(fd, p, left, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    left -= static_cast<std::size_t>(sent);
  }
  return true;
}

// One connection's request/response loop. Returns when the peer closes,
// on any socket error, or on protocol abuse; the caller owns fd cleanup.
void serve_fd(Scheduler& scheduler, int fd, std::size_t max_line_bytes) {
  std::string pending;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n == 0) return;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    pending.append(buf, static_cast<std::size_t>(n));
    if (pending.size() > max_line_bytes) {
      // Protocol abuse: tell the client why before hanging up, so the
      // failure is diagnosable instead of a silent disconnect.
      std::string reply = error_response(
          "request line exceeds " + std::to_string(max_line_bytes) +
          " bytes");
      reply.push_back('\n');
      send_all(fd, reply);
      return;
    }

    std::size_t pos;
    while ((pos = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, pos);
      pending.erase(0, pos + 1);
      if (line.empty()) continue;
      std::string response = handle_request(scheduler, line);
      response.push_back('\n');
      if (!send_all(fd, response)) return;
    }
  }
}

}  // namespace

void Daemon::serve_connection(Connection& conn) {
  serve_fd(*scheduler_, conn.fd, options_.max_line_bytes);
  // Close under conns_mu_ so stop() never shutdown()s a recycled fd
  // number: while it holds the lock, no handler can release one.
  std::lock_guard lock(conns_mu_);
  ::close(conn.fd);
  conn.done.store(true, std::memory_order_release);
}

void Daemon::close_listener() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Daemon::stop(bool drain_first) {
  if (stopped_.exchange(true)) return;
  stopping_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  close_listener();

  // Scheduler first: during a drain, established connections stay usable
  // so clients can keep polling status while the backlog finishes.
  if (scheduler_) scheduler_->shutdown(drain_first);

  {
    std::lock_guard lock(conns_mu_);
    for (Connection& conn : conns_) {
      if (!conn.done.load(std::memory_order_acquire)) {
        ::shutdown(conn.fd, SHUT_RDWR);  // wake blocking recv()
      }
    }
  }
  conns_.clear();  // joins every handler; each closed its own fd on exit

  // The admin plane goes down last: /healthz and /readyz stayed probeable
  // through the whole drain above (answering 503 not-ready, which is the
  // orchestration contract for a draining instance).
  if (admin_) admin_->stop();

  bool was_running = running_.exchange(false);
  if (was_running) {
    obs::Log::global()
        .event(obs::LogLevel::kInfo, "daemon.stop")
        .arg("drained", drain_first)
        .arg("connections", connections_.load(std::memory_order_relaxed));
  }
}

}  // namespace tspopt::serve
