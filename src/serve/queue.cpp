#include "serve/queue.hpp"

#include "common/check.hpp"

namespace tspopt::serve {

JobQueue::JobQueue(std::size_t capacity) : capacity_(capacity) {
  TSPOPT_CHECK_MSG(capacity_ >= 1, "JobQueue capacity must be >= 1");
}

JobQueue::PushResult JobQueue::push(const std::shared_ptr<Job>& job,
                                    bool force) {
  TSPOPT_CHECK(job != nullptr);
  {
    std::lock_guard lock(mu_);
    if (closed_) return PushResult::kClosed;
    if (!force && depth_ >= capacity_) return PushResult::kFull;
    buckets_[job->spec().priority].push_back(job);
    ++depth_;
  }
  cv_.notify_one();
  return PushResult::kOk;
}

JobQueue::PopOutcome JobQueue::pop() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [&] { return depth_ > 0 || closed_; });
  while (depth_ > 0) {
    auto it = buckets_.begin();
    while (it->second.empty()) it = buckets_.erase(it);
    std::shared_ptr<Job> job = std::move(it->second.front());
    it->second.pop_front();
    --depth_;

    // Lazily resolve jobs that died while queued. The CAS means a racing
    // cancel()/worker transition is honored exactly once.
    if (job->cancel_requested() &&
        job->try_transition(JobState::kQueued, JobState::kCancelled)) {
      return {nullptr, std::move(job)};
    }
    if (job->deadline_passed() &&
        job->try_transition(JobState::kQueued, JobState::kExpired)) {
      return {nullptr, std::move(job)};
    }
    if (job->state() != JobState::kQueued) continue;  // already resolved
    return {std::move(job), nullptr};
  }
  return {};  // closed and drained
}

std::vector<std::shared_ptr<Job>> JobQueue::try_pop_matching(
    const std::function<bool(const Job&)>& pred, std::size_t max) {
  std::vector<std::shared_ptr<Job>> out;
  if (max == 0) return out;
  std::lock_guard lock(mu_);
  for (auto& [priority, bucket] : buckets_) {
    (void)priority;
    for (auto it = bucket.begin(); it != bucket.end() && out.size() < max;) {
      const std::shared_ptr<Job>& job = *it;
      // Dead-while-queued jobs stay for pop()'s discard path, so every
      // cancellation/expiry is still accounted exactly once.
      if (job->state() != JobState::kQueued || job->cancel_requested() ||
          job->deadline_passed() || !pred(*job)) {
        ++it;
        continue;
      }
      out.push_back(std::move(*it));
      it = bucket.erase(it);
      --depth_;
    }
    if (out.size() >= max) break;
  }
  return out;
}

void JobQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void JobQueue::close_now() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
    for (auto& [priority, bucket] : buckets_) {
      (void)priority;
      for (const std::shared_ptr<Job>& job : bucket) job->request_cancel();
    }
  }
  cv_.notify_all();
}

std::size_t JobQueue::depth() const {
  std::lock_guard lock(mu_);
  return depth_;
}

double JobQueue::oldest_age_ms() const {
  std::lock_guard lock(mu_);
  bool any = false;
  auto oldest = std::chrono::steady_clock::time_point::max();
  for (const auto& [priority, bucket] : buckets_) {
    (void)priority;
    for (const std::shared_ptr<Job>& job : bucket) {
      if (job->state() != JobState::kQueued) continue;  // lazy discard
      if (job->accepted_at() < oldest) {
        oldest = job->accepted_at();
        any = true;
      }
    }
  }
  if (!any) return 0.0;
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - oldest)
      .count();
}

bool JobQueue::closed() const {
  std::lock_guard lock(mu_);
  return closed_;
}

}  // namespace tspopt::serve
