// Deadline-bounded TCP client for the tspoptd protocol.
//
// One Client is one connection; request() writes one line and reads one
// response line, so the call pattern mirrors the protocol exactly. The
// verb helpers (submit/status/result/cancel/forget/stats/engines) build the
// request JSON and parse the response into an obs::JsonValue — the
// tspopt_client CLI, the stress test and ci.sh all drive the daemon
// through this one class.
//
// Every socket operation is poll()-bounded: connect by
// ClientOptions::connect_timeout_ms, each request round trip by
// io_timeout_ms. A stalled or wedged daemon therefore costs the caller a
// typed ClientTimeout after the configured bound — never an indefinite
// blocking-recv hang (the PR 5 client's failure mode). After a timeout or
// connection loss the client is disconnected (connected() == false);
// reconnect() establishes a fresh connection, and submit_with_retry()
// packages the full robust-submit loop: reconnect on loss, jittered
// exponential backoff on kFull/draining rejections honoring the daemon's
// retry_after_ms hint, all bounded by one overall deadline. Pair it with
// JobSpec::idempotency_key so a retry after an ambiguous failure dedupes
// instead of double-submitting.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "obs/json.hpp"
#include "serve/job.hpp"

namespace tspopt::serve {

struct ClientOptions {
  double connect_timeout_ms = 5000.0;
  // Bound on one request() round trip (send + await response). <= 0
  // disables the bound (legacy blocking behaviour; tests only).
  double io_timeout_ms = 30000.0;
};

// Raised when a socket operation exceeds its deadline. Derives from
// CheckError so existing catch sites keep working; callers that care
// about the distinction (exit codes, retry loops) catch this first.
class ClientTimeout : public CheckError {
 public:
  ClientTimeout(const std::string& phase, double timeout_ms)
      : CheckError("client " + phase + " timed out after " +
                   std::to_string(timeout_ms) + " ms"),
        phase_(phase) {}
  // "connect", "send" or "recv".
  const std::string& phase() const { return phase_; }

 private:
  std::string phase_;
};

class Client {
 public:
  // Connect immediately; CheckError when the daemon is unreachable,
  // ClientTimeout when it does not accept within connect_timeout_ms.
  Client(const std::string& host, std::uint16_t port,
         ClientOptions options = {});
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // False after a timeout or connection loss; request() on a
  // disconnected client throws. reconnect() restores service.
  bool connected() const { return fd_ >= 0; }
  // Drop the current connection (if any) and establish a fresh one.
  void reconnect();

  // Raw round trip: send `line` (newline appended), await the response
  // line, parse it. CheckError on connection loss or malformed response
  // JSON; ClientTimeout when the round trip exceeds io_timeout_ms (the
  // connection is dropped — a late response must not answer the next
  // request).
  obs::JsonValue request(const std::string& line);

  // Verb helpers. Responses are returned as parsed objects; "ok" is NOT
  // checked here — rejection responses (queue full, invalid spec) are
  // data the caller inspects, not errors.
  //
  // submit() is the distributed-trace origin: a spec with an empty
  // trace_id gets a fresh obs::new_trace_id() (and, when a span is open
  // on this thread, its id as parent_span) before serialization, so the
  // daemon's spans and JSONL events correlate back to this client. The
  // id actually sent — minted or caller-supplied — is readable via
  // last_trace_id() after the call.
  obs::JsonValue submit(const JobSpec& spec);
  obs::JsonValue status(std::uint64_t id);
  obs::JsonValue result(std::uint64_t id);
  obs::JsonValue cancel(std::uint64_t id);
  obs::JsonValue forget(std::uint64_t id);  // drop a terminal job's result
  obs::JsonValue stats();
  obs::JsonValue engines();

  // Robust submit: retry capacity rejections ("queue full", "service
  // draining") with jittered exponential backoff, floored at the
  // daemon's retry_after_ms hint, and reconnect-and-retry after timeouts
  // or connection loss — all bounded by `deadline_seconds` of total
  // elapsed time. Returns the first accepted (or invalid-spec) response;
  // when the deadline expires the last rejection response is returned,
  // or the last transport error is rethrown. Give the spec an
  // idempotency_key: a retry after an ambiguous failure then dedupes
  // server-side instead of double-running the job.
  obs::JsonValue submit_with_retry(const JobSpec& spec,
                                   double deadline_seconds);

  // Poll status until the job reaches a terminal state or
  // `timeout_seconds` elapses; returns the last status response. The
  // response's job.state tells the caller which of the two happened.
  obs::JsonValue wait(std::uint64_t id, double timeout_seconds,
                      double poll_interval_ms = 20.0);

  // Trace id of the most recent submit()/submit_with_retry() call (the
  // minted one when the spec carried none). Empty before the first
  // submit. Error paths still set it first, so a caller reporting a
  // timeout can name the trace to look for in the daemon's telemetry.
  const std::string& last_trace_id() const { return last_trace_id_; }

 private:
  void connect_now();
  void disconnect();

  std::string host_;
  std::uint16_t port_;
  ClientOptions options_;
  int fd_ = -1;
  std::string pending_;  // bytes received past the last response line
  std::string last_trace_id_;
};

}  // namespace tspopt::serve
