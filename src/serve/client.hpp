// Blocking TCP client for the tspoptd protocol.
//
// One Client is one connection; request() writes one line and reads one
// response line, so the call pattern mirrors the protocol exactly. The
// verb helpers (submit/status/result/cancel/forget/stats/engines) build the
// request JSON and parse the response into an obs::JsonValue — the
// tspopt_client CLI, the stress test and ci.sh all drive the daemon
// through this one class.
#pragma once

#include <cstdint>
#include <string>

#include "obs/json.hpp"
#include "serve/job.hpp"

namespace tspopt::serve {

class Client {
 public:
  // Connect immediately; CheckError when the daemon is unreachable.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // Raw round trip: send `line` (newline appended), block for the
  // response line, parse it. CheckError on connection loss or malformed
  // response JSON.
  obs::JsonValue request(const std::string& line);

  // Verb helpers. Responses are returned as parsed objects; "ok" is NOT
  // checked here — rejection responses (queue full, invalid spec) are
  // data the caller inspects, not errors.
  obs::JsonValue submit(const JobSpec& spec);
  obs::JsonValue status(std::uint64_t id);
  obs::JsonValue result(std::uint64_t id);
  obs::JsonValue cancel(std::uint64_t id);
  obs::JsonValue forget(std::uint64_t id);  // drop a terminal job's result
  obs::JsonValue stats();
  obs::JsonValue engines();

  // Poll status until the job reaches a terminal state or
  // `timeout_seconds` elapses; returns the last status response. The
  // response's job.state tells the caller which of the two happened.
  obs::JsonValue wait(std::uint64_t id, double timeout_seconds,
                      double poll_interval_ms = 20.0);

 private:
  int fd_ = -1;
  std::string pending_;  // bytes received past the last response line
};

}  // namespace tspopt::serve
