#include "serve/batcher.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/timer.hpp"

namespace tspopt::serve {

namespace {

std::uint64_t fnv1a(const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= p[i];
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

bool batchable_engine(const std::string& engine) {
  return !batch_engine_for(engine).empty();
}

std::string batch_engine_for(const std::string& engine) {
  // Pairings are bit-identical by construction: BatchTwoOptSimd runs
  // TwoOptSimd's exact row sweep per slot, and BatchTwoOptGpu's
  // block-per-tour reduction computes the same lexicographic-min BestMove
  // as gpu-small's grid-stride kernel (the equivalence tests pin both).
  if (engine == "batch-simd" || engine == "cpu-simd") return "batch-simd";
  if (engine == "batch-gpu" || engine == "gpu-small") return "batch-gpu";
  return "";
}

bool spec_batchable(const JobSpec& spec) {
  return spec.batchable && batchable_engine(spec.engine);
}

std::string batch_key(const JobSpec& spec) {
  std::string key = batch_engine_for(spec.engine);
  key += "|k=";
  key += std::to_string(spec.k);
  if (!spec.inline_payload()) {
    key += "|catalog=";
    key += spec.catalog;
    return key;
  }
  // Inline payloads coalesce on the exact coordinate bytes, not the
  // client-chosen name: Point is two floats, so hashing the contiguous
  // vector storage covers every coordinate bit.
  static_assert(sizeof(Point) == 2 * sizeof(float));
  key += "|n=";
  key += std::to_string(spec.points.size());
  key += "|pts=";
  key += std::to_string(
      fnv1a(spec.points.data(), spec.points.size() * sizeof(Point)));
  return key;
}

Batcher::Batcher(JobQueue& queue, BatcherOptions options)
    : queue_(queue), options_(options) {}

std::vector<std::shared_ptr<Job>> Batcher::collect(
    std::shared_ptr<Job> lead) {
  std::vector<std::shared_ptr<Job>> batch;
  batch.push_back(std::move(lead));
  const JobSpec& spec = batch.front()->spec();
  if (options_.max_batch <= 1 || !spec_batchable(spec)) return batch;

  const std::string key = batch_key(spec);
  auto matches = [&](const Job& job) {
    return spec_batchable(job.spec()) && batch_key(job.spec()) == key;
  };

  WallTimer timer;
  for (;;) {
    std::vector<std::shared_ptr<Job>> more =
        queue_.try_pop_matching(matches, options_.max_batch - batch.size());
    for (std::shared_ptr<Job>& job : more) batch.push_back(std::move(job));
    if (batch.size() >= options_.max_batch) break;
    double remaining_ms = options_.max_wait_ms - timer.millis();
    if (remaining_ms <= 0.0) break;
    // The queue has no "wait for a matching push" primitive; the linger
    // window is small (single-digit ms), so a short poll keeps the lead
    // job's added latency bounded without threading a condition variable
    // through the scheduler's hot path.
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>(std::min(remaining_ms, 0.25) * 1e3)));
  }
  if (batch.size() > 1) {
    batches_.fetch_add(1, std::memory_order_relaxed);
    batched_jobs_.fetch_add(batch.size(), std::memory_order_relaxed);
  }
  return batch;
}

}  // namespace tspopt::serve
