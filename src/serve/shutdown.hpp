// Process shutdown signal latch for long-lived hosts.
//
// `tspoptd` and the long-running example drivers share one convention:
// SIGINT/SIGTERM do not kill the process mid-solve — they latch into an
// async-signal-safe flag, the host drains (running jobs stop at their
// next cooperative hook poll, telemetry sinks flush via obs/flush), and
// the process exits with the shell convention 128+signo (130 for SIGINT,
// 143 for SIGTERM) so supervisors can tell a clean drain from a crash.
//
// The latch is a process-wide singleton because signal dispositions are:
// install() is idempotent and the first delivered signal wins (a second
// SIGINT while draining does not re-trigger anything; operators who want
// a hard kill escalate to SIGKILL).
#pragma once

namespace tspopt::serve {

class ShutdownSignal {
 public:
  // Install SIGINT + SIGTERM handlers (sigaction, no SA_RESTART so
  // blocking accept()/poll() wake with EINTR). Idempotent.
  void install();

  // The first latched signal number, 0 when none arrived yet. Safe to
  // poll from any thread (and from ILS should_stop hooks).
  int signal() const;
  bool requested() const { return signal() != 0; }

  // 128 + signo (130 = SIGINT, 143 = SIGTERM); 0 when no signal latched.
  int exit_code() const;

  // Forget a latched signal — tests only.
  void reset();

  static ShutdownSignal& global();
};

}  // namespace tspopt::serve
