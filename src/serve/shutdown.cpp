#include "serve/shutdown.hpp"

#include <csignal>

#include <atomic>

namespace tspopt::serve {

namespace {

// The handler may run on any thread at any instruction; a lock-free
// atomic int is the only state it touches.
std::atomic<int> g_signal{0};

extern "C" void latch_signal(int signo) {
  int expected = 0;
  g_signal.compare_exchange_strong(expected, signo,
                                   std::memory_order_relaxed);
}

}  // namespace

void ShutdownSignal::install() {
  struct sigaction action {};
  action.sa_handler = latch_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking syscalls wake with EINTR
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

int ShutdownSignal::signal() const {
  return g_signal.load(std::memory_order_relaxed);
}

int ShutdownSignal::exit_code() const {
  int signo = signal();
  return signo == 0 ? 0 : 128 + signo;
}

void ShutdownSignal::reset() { g_signal.store(0, std::memory_order_relaxed); }

ShutdownSignal& ShutdownSignal::global() {
  static ShutdownSignal instance;
  return instance;
}

}  // namespace tspopt::serve
