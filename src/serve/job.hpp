// The solve-service job model and its versioned JSON wire schema.
//
// A JobSpec is everything a client says about one solve request: the
// instance (a catalog/TSPLIB reference or an inline EUC_2D coordinate
// payload), the engine to run it on, a time/iteration budget, a priority
// class and an optional wall-clock deadline. The wire form is one JSON
// object (schema "tspopt.job", version 1) built on obs/json, so the
// daemon, the client CLI and the tests all share one
// serializer/deserializer pair and malformed submissions fail with a
// line-numbered CheckError instead of undefined behaviour.
//
// A Job is the server-side record: the spec plus the full lifecycle state
// machine (queued -> running -> finished/cancelled/expired/failed), live
// progress the scheduler streams from the ILS hooks, and the terminal
// result including a per-job RunReport. Jobs are shared_ptr-held and
// internally synchronized: the submitter, the worker thread and any
// number of status readers touch one concurrently.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/check.hpp"
#include "obs/json.hpp"
#include "tsp/point.hpp"

namespace tspopt::serve {

inline constexpr int kJobSchemaVersion = 1;

enum class JobState : int {
  kQueued = 0,
  kRunning = 1,
  kFinished = 2,   // ran to its budget (or stop) and produced a result
  kCancelled = 3,  // client cancel, while queued or mid-run
  kExpired = 4,    // deadline passed while queued or mid-run
  kFailed = 5,     // engine raised a fatal error after all retries
};

const char* to_string(JobState state);
bool is_terminal(JobState state);

struct JobSpec {
  // Exactly one instance source: a catalog name ("kroA200", "berlin52",
  // any paper_catalog() entry) or an inline coordinate payload.
  std::string catalog;
  std::string instance_name;  // name for the inline payload
  std::vector<Point> points;  // inline EUC_2D coordinates

  std::string engine = "cpu-parallel";  // EngineFactory roster name
  std::int32_t priority = 1;            // 0 = most urgent; FIFO within
  double time_limit_seconds = 1.0;      // ILS budget
  std::int64_t max_iterations = -1;     // -1 = until the time budget
  double deadline_ms = -1.0;  // wall deadline from acceptance; <0 = none
  std::uint64_t seed = 1;
  std::int32_t devices = 1;  // device-lease size for the gpu-* engines

  // Neighbor-list size for the pruned engines (cpu-pruned,
  // cpu-simd-pruned, gpu-pruned). 0 = engine default. Rejected for
  // non-pruned engines and when k >= the instance's city count.
  std::int32_t k = 0;

  // Opt-in to the serve-side micro-batcher: the daemon may coalesce this
  // job with other queued batchable jobs sharing its (instance, engine
  // class, k) batch key into one batch engine pass. Each coalesced job is
  // still settled individually (own result, report, journal record);
  // results are bit-identical to a solo run of the same spec. Only the
  // batchable engine classes accept it (rejected otherwise with a typed
  // "batch shape" error).
  bool batchable = false;

  // Client-chosen dedup token: a resubmit carrying the same key (after an
  // ambiguous failure — timeout, dropped connection, daemon restart) is
  // answered with the already-accepted job's id instead of double-running
  // the work. Empty = no dedup. Keys live as long as the job is retained.
  std::string idempotency_key;

  // Distributed-trace context. The trace id is minted by the submitting
  // client (serve::Client fills it when empty; tspopt_client accepts
  // --trace-id for caller-supplied correlation) and rides the wire, the
  // journal and every span/log event either process emits for this job —
  // so the client's submit span and the daemon's queue/lease/run spans
  // share one id and their Chrome exports merge into one timeline.
  // parent_span is the client-side span id that issued the submit (a
  // process-local ordinal, carried for span-graph stitching only).
  std::string trace_id;
  std::uint64_t parent_span = 0;

  bool inline_payload() const { return catalog.empty(); }
};

// Wire schema v1:
//   { "schema": "tspopt.job", "schema_version": 1,
//     "catalog": "kroA200" | "name": "...", "points": [[x,y],...],
//     "engine": "...", "priority": 1, "time_limit_seconds": 1.0,
//     "max_iterations": -1, "deadline_ms": -1, "seed": 1, "devices": 1,
//     "k": 10, "batchable": true, "idempotency_key": "...",
//     "trace_id": "...", "parent_span": N }
// Optional fields take the JobSpec defaults; unknown fields are rejected
// so schema-version mistakes surface at the boundary.
std::string job_spec_to_json(const JobSpec& spec);
JobSpec job_spec_from_json(const obs::JsonValue& value);  // throws CheckError

struct JobResult {
  std::int64_t constructive_length = 0;
  std::int64_t best_length = 0;
  std::int64_t iterations = 0;
  std::int64_t improvements = 0;
  std::uint64_t checks = 0;
  double wall_seconds = 0.0;
  bool stopped = false;               // cut short by cancel/deadline/drain
  std::vector<std::int32_t> order;    // best tour found
  std::string report_json;            // per-job obs::RunReport document
};

// JobResult <-> JSON: the daemon's "result" verb payload and the form the
// journal persists for settled jobs, so a restarted daemon serves the
// same result bytes the crashed one would have.
void write_job_result(obs::JsonWriter& w, const JobResult& result);
JobResult job_result_from_json(const obs::JsonValue& value);  // CheckError

class Job {
 public:
  Job(std::uint64_t id, JobSpec spec)
      : id_(id),
        spec_(std::move(spec)),
        accepted_at_(std::chrono::steady_clock::now()) {}

  std::uint64_t id() const { return id_; }
  const JobSpec& spec() const { return spec_; }

  JobState state() const {
    return static_cast<JobState>(state_.load(std::memory_order_acquire));
  }
  // Atomically move `from` -> `to`; false when another thread got there
  // first (e.g. cancel racing the worker's start).
  bool try_transition(JobState from, JobState to) {
    int expected = static_cast<int>(from);
    return state_.compare_exchange_strong(expected, static_cast<int>(to),
                                          std::memory_order_acq_rel);
  }

  // Cooperative cancellation: flips the flag the worker's should_stop hook
  // polls. The state transition happens at the next poll (running jobs) or
  // at dequeue (queued jobs are marked by cancel() in the scheduler).
  void request_cancel() {
    cancel_requested_.store(true, std::memory_order_release);
  }
  bool cancel_requested() const {
    return cancel_requested_.load(std::memory_order_acquire);
  }

  // Journal-recovery support. mark_recovered() flags a job re-queued
  // after a daemon restart; `was_running` additionally asks the worker to
  // resume from the job's spool checkpoint instead of restarting the
  // search. restore_terminal() rebuilds a settled job (state + retained
  // result/error) from its journal record; recovery-time only, before the
  // job is shared.
  void mark_recovered(bool was_running, std::int32_t prior_attempts) {
    recovered_.store(true, std::memory_order_release);
    resume_.store(was_running, std::memory_order_release);
    attempts.store(prior_attempts, std::memory_order_relaxed);
  }
  bool recovered() const { return recovered_.load(std::memory_order_acquire); }
  bool resume_requested() const {
    return resume_.load(std::memory_order_acquire);
  }
  // Consume the resume request (one-shot: only the first attempt after a
  // restart resumes; a retry after an engine fault runs fresh).
  bool take_resume() {
    return resume_.exchange(false, std::memory_order_acq_rel);
  }
  void restore_terminal(JobState state, JobResult result, std::string error) {
    TSPOPT_CHECK_MSG(is_terminal(state),
                     "restore_terminal needs a terminal state");
    recovered_.store(true, std::memory_order_release);
    if (result.best_length > 0) {
      best_length.store(result.best_length, std::memory_order_relaxed);
      iteration.store(result.iterations, std::memory_order_relaxed);
    }
    set_result(std::move(result));
    if (!error.empty()) set_error(std::move(error));
    state_.store(static_cast<int>(state), std::memory_order_release);
  }

  std::chrono::steady_clock::time_point accepted_at() const {
    return accepted_at_;
  }
  bool has_deadline() const { return spec_.deadline_ms >= 0.0; }
  // Milliseconds until the deadline (negative = already past).
  double deadline_remaining_ms() const;
  bool deadline_passed() const {
    return has_deadline() && deadline_remaining_ms() <= 0.0;
  }

  // Live progress, streamed by the scheduler's ILS hooks.
  std::atomic<std::int64_t> best_length{-1};
  std::atomic<std::int64_t> iteration{0};
  std::atomic<std::int32_t> attempts{0};  // run attempts (retries = n-1)

  // Micro-batch membership, stamped by the scheduler when this job ran
  // inside a coalesced batch pass. 0 = ran solo. Occupancy is the member
  // count of the batch this job joined.
  std::atomic<std::uint64_t> batch_id{0};
  std::atomic<std::int32_t> batch_occupancy{0};

  // Per-phase durations, recorded by the scheduler as the job moves
  // through its pipeline: queue wait, device-lease acquisition, the run
  // itself, and settle (journal append + accounting). -1 = not reached.
  // These feed the serve.job_phase_us histograms and the /tracez ring.
  std::atomic<double> wait_seconds{-1.0};
  std::atomic<double> lease_seconds{-1.0};
  std::atomic<double> run_seconds{-1.0};
  std::atomic<double> settle_seconds{-1.0};

  void set_result(JobResult result) {
    std::lock_guard lock(mu_);
    result_ = std::move(result);
  }
  JobResult result() const {
    std::lock_guard lock(mu_);
    return result_;
  }
  void set_error(std::string error) {
    std::lock_guard lock(mu_);
    error_ = std::move(error);
  }
  std::string error() const {
    std::lock_guard lock(mu_);
    return error_;
  }

 private:
  const std::uint64_t id_;
  const JobSpec spec_;
  const std::chrono::steady_clock::time_point accepted_at_;
  std::atomic<int> state_{static_cast<int>(JobState::kQueued)};
  std::atomic<bool> cancel_requested_{false};
  std::atomic<bool> recovered_{false};
  std::atomic<bool> resume_{false};
  mutable std::mutex mu_;
  JobResult result_;
  std::string error_;
};

// Append the job's status object (id, state, instance, engine, priority,
// live progress, wait/run times, error when failed) to `w` — the payload
// of the daemon's "status" verb and of test assertions.
void write_job_status(obs::JsonWriter& w, const Job& job);

}  // namespace tspopt::serve
