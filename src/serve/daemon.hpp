// tspoptd — the solve-service network front end.
//
// A Daemon owns a Scheduler and exposes it over a line-delimited-JSON TCP
// protocol: each request is one JSON object on one line, each response is
// one JSON object on one line, connections are full-duplex and may issue
// any number of requests. The verb set:
//
//   {"verb":"submit","job":{...tspopt.job v1...}}
//       -> {"ok":true,"id":N} | {"ok":false,"error":...,"retry_after_ms":N}
//   {"verb":"status","id":N}   -> {"ok":true,"job":{...}}
//   {"verb":"result","id":N}   -> {"ok":true,"job":{...},"result":{...}}
//   {"verb":"cancel","id":N}   -> {"ok":true,"cancelled":bool}
//   {"verb":"forget","id":N}   -> {"ok":true,"forgotten":bool}
//       (drop a terminal job's retained result; the scheduler also
//       evicts oldest-settled jobs beyond max_retained_jobs)
//   {"verb":"stats"}           -> {"ok":true,"stats":{...}}
//   {"verb":"engines"}         -> {"ok":true,"engines":[{name,description}]}
//   {"verb":"ping"}            -> {"ok":true}
//
// Every response carries "ok"; failures carry "error" (and, for capacity
// rejections, the scheduler's "retry_after_ms" backpressure hint).
// handle_request() is a pure string->string function so the protocol is
// unit-testable without sockets.
//
// The daemon binds 127.0.0.1 only (this is a solver, not an internet
// service); port 0 requests an ephemeral port, readable via port() — the
// tests' and ci.sh's race-free startup path.
//
// With admin_port >= 0 the daemon additionally mounts the HTTP admin
// plane (serve/admin.hpp: /metrics, /healthz, /readyz, /statusz,
// /tracez) on its own listener. The admin server outlives the protocol
// listener during stop(): /readyz flips 503 the moment stop() begins and
// stays probeable through the whole drain, so an orchestrator watching
// the probe sees the drain instead of a vanished endpoint.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/http.hpp"
#include "serve/scheduler.hpp"
#include "simt/device_pool.hpp"

namespace tspopt::serve {

struct DaemonOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; bound port via Daemon::port()
  SchedulerOptions scheduler;
  int listen_backlog = 16;
  // A request line longer than this is a protocol error, not a big job:
  // the largest legitimate payload (a 100k-point inline instance) stays
  // well under the default, and the cap keeps a misbehaving client from
  // growing the connection buffer without bound. The offender gets one
  // {"ok":false,...} error reply, then the connection is closed.
  std::size_t max_line_bytes = 16u << 20;
  // HTTP admin plane port: -1 = disabled, 0 = ephemeral (bound port via
  // admin_port()), otherwise the port to bind. Binds `host`.
  int admin_port = -1;
  // Longest /profilez capture the admin plane honors (seconds); <= 0
  // disables the endpoint. See serve/admin.hpp.
  double profilez_max_seconds = 60.0;
};

class Daemon {
 public:
  // `pool` must outlive the daemon. The destructor performs
  // stop(/*drain_first=*/false).
  Daemon(simt::DevicePool& pool, DaemonOptions options = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  // Bind, listen and spawn the accept loop. CheckError when the socket
  // cannot be bound. Idempotent once running.
  void start();

  // The bound port (resolves option port 0 to the kernel's choice).
  std::uint16_t port() const { return port_; }
  // The admin plane's bound port; 0 when the admin plane is disabled.
  std::uint16_t admin_port() const { return admin_ ? admin_->port() : 0; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  // Stop accepting, unblock every connection, shut the scheduler down.
  // drain_first=true is the SIGTERM path: queued and running jobs finish
  // before the call returns. Idempotent.
  void stop(bool drain_first);

  Scheduler& scheduler() { return *scheduler_; }
  std::uint64_t connections_accepted() const {
    return connections_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  void accept_loop();
  void serve_connection(Connection& conn);
  void close_listener();

  DaemonOptions options_;
  std::unique_ptr<Scheduler> scheduler_;
  std::unique_ptr<obs::HttpServer> admin_;  // nullptr = admin plane off
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> connections_{0};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::mutex conns_mu_;
  // The handler thread owns the fd: it closes it and flips `done` on every
  // exit path (peer close, recv/send error, oversize line, shutdown()).
  // accept_loop() reaps done entries, so a long-running daemon holds one
  // Connection per *live* client, not per client ever seen. `thread` is
  // the last member: ~Connection joins it before `done`/`fd` are destroyed.
  struct Connection {
    int fd = -1;
    std::atomic<bool> done{false};
    std::jthread thread;
  };
  std::list<Connection> conns_;

  std::jthread accept_thread_;
};

// One protocol request -> one response (no trailing newline). Never
// throws: malformed JSON, unknown verbs and scheduler rejections all
// render as {"ok":false,...} responses.
std::string handle_request(Scheduler& scheduler, const std::string& line);

}  // namespace tspopt::serve
