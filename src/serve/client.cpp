#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/check.hpp"

namespace tspopt::serve {

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  TSPOPT_CHECK_MSG(fd_ >= 0, "socket() failed: " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  TSPOPT_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                   "invalid daemon address \"" << host << "\"");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    int err = errno;
    ::close(fd_);
    fd_ = -1;
    TSPOPT_CHECK_MSG(false, "connect(" << host << ":" << port
                                       << ") failed: " << std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

obs::JsonValue Client::request(const std::string& line) {
  TSPOPT_CHECK_MSG(fd_ >= 0, "client is not connected");
  std::string out = line;
  out.push_back('\n');
  const char* p = out.data();
  std::size_t left = out.size();
  while (left > 0) {
    ssize_t sent = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (sent < 0 && errno == EINTR) continue;
    TSPOPT_CHECK_MSG(sent > 0,
                     "send() failed: " << std::strerror(errno));
    p += sent;
    left -= static_cast<std::size_t>(sent);
  }

  char buf[4096];
  for (;;) {
    std::size_t pos = pending_.find('\n');
    if (pos != std::string::npos) {
      std::string response = pending_.substr(0, pos);
      pending_.erase(0, pos + 1);
      return obs::json_parse(response);
    }
    ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    TSPOPT_CHECK_MSG(n > 0, "connection closed while awaiting response");
    pending_.append(buf, static_cast<std::size_t>(n));
  }
}

obs::JsonValue Client::submit(const JobSpec& spec) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("verb").value("submit");
  w.key("job").raw_value(job_spec_to_json(spec));
  w.end_object();
  return request(w.str());
}

namespace {

std::string id_request(const char* verb, std::uint64_t id) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("verb").value(verb);
  w.key("id").value(id);
  w.end_object();
  return w.str();
}

}  // namespace

obs::JsonValue Client::status(std::uint64_t id) {
  return request(id_request("status", id));
}

obs::JsonValue Client::result(std::uint64_t id) {
  return request(id_request("result", id));
}

obs::JsonValue Client::cancel(std::uint64_t id) {
  return request(id_request("cancel", id));
}

obs::JsonValue Client::forget(std::uint64_t id) {
  return request(id_request("forget", id));
}

obs::JsonValue Client::stats() { return request("{\"verb\":\"stats\"}"); }

obs::JsonValue Client::engines() { return request("{\"verb\":\"engines\"}"); }

obs::JsonValue Client::wait(std::uint64_t id, double timeout_seconds,
                            double poll_interval_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    obs::JsonValue response = status(id);
    const obs::JsonValue* ok = response.find("ok");
    if (ok == nullptr || !ok->boolean) return response;
    const obs::JsonValue* job = response.find("job");
    if (job != nullptr) {
      const obs::JsonValue* state = job->find("state");
      if (state != nullptr && state->string != "queued" &&
          state->string != "running") {
        return response;
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) return response;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(poll_interval_ms));
  }
}

}  // namespace tspopt::serve
