#include "serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <thread>

#include "obs/trace.hpp"

namespace tspopt::serve {

namespace {

using Clock = std::chrono::steady_clock;

double ms_until(Clock::time_point deadline) {
  return std::chrono::duration<double, std::milli>(deadline - Clock::now())
      .count();
}

// poll() for `events` on `fd` until `deadline` (infinite when unbounded).
// True when the fd is ready; false when the deadline expired first.
bool poll_until(int fd, short events, bool bounded,
                Clock::time_point deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (bounded) {
      double remaining = ms_until(deadline);
      if (remaining <= 0.0) return false;
      // Round up so a sub-millisecond remainder still polls once.
      timeout_ms = static_cast<int>(remaining) + 1;
    }
    pollfd pfd{fd, events, 0};
    int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return true;  // let the subsequent send/recv surface the error
    }
    if (ready > 0) return true;
    if (bounded && ms_until(deadline) <= 0.0) return false;
  }
}

}  // namespace

Client::Client(const std::string& host, std::uint16_t port,
               ClientOptions options)
    : host_(host), port_(port), options_(options) {
  connect_now();
}

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

void Client::reconnect() {
  disconnect();
  connect_now();
}

void Client::connect_now() {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  TSPOPT_CHECK_MSG(fd >= 0, "socket() failed: " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    TSPOPT_CHECK_MSG(false, "invalid daemon address \"" << host_ << "\"");
  }

  // Non-blocking connect: EINPROGRESS, then poll for writability within
  // connect_timeout_ms and read the outcome from SO_ERROR. The socket
  // stays non-blocking for its whole life — every later send/recv is
  // poll()-gated the same way.
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno != EINPROGRESS) {
    int err = errno;
    ::close(fd);
    TSPOPT_CHECK_MSG(false, "connect(" << host_ << ":" << port_
                                       << ") failed: " << std::strerror(err));
  }
  if (rc != 0) {
    bool bounded = options_.connect_timeout_ms > 0.0;
    auto deadline =
        Clock::now() +
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double, std::milli>(
                std::max(0.0, options_.connect_timeout_ms)));
    if (!poll_until(fd, POLLOUT, bounded, deadline)) {
      ::close(fd);
      throw ClientTimeout("connect", options_.connect_timeout_ms);
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      ::close(fd);
      TSPOPT_CHECK_MSG(false, "connect(" << host_ << ":" << port_
                                         << ") failed: "
                                         << std::strerror(err));
    }
  }
  fd_ = fd;
}

obs::JsonValue Client::request(const std::string& line) {
  TSPOPT_CHECK_MSG(fd_ >= 0, "client is not connected");
  const bool bounded = options_.io_timeout_ms > 0.0;
  auto deadline = Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double, std::milli>(
                          std::max(0.0, options_.io_timeout_ms)));
  // A timeout mid-request leaves the stream out of sync (the late
  // response would answer the *next* request), so every timeout/error
  // exit drops the connection; the caller reconnect()s.
  auto fail_timeout = [&](const char* phase) -> ClientTimeout {
    disconnect();
    return ClientTimeout(phase, options_.io_timeout_ms);
  };

  std::string out = line;
  out.push_back('\n');
  const char* p = out.data();
  std::size_t left = out.size();
  while (left > 0) {
    if (!poll_until(fd_, POLLOUT, bounded, deadline)) {
      throw fail_timeout("send");
    }
    ssize_t sent = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (sent < 0 &&
        (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if (sent <= 0) {
      int err = errno;
      disconnect();
      TSPOPT_CHECK_MSG(false, "send() failed: " << std::strerror(err));
    }
    p += sent;
    left -= static_cast<std::size_t>(sent);
  }

  char buf[4096];
  for (;;) {
    std::size_t pos = pending_.find('\n');
    if (pos != std::string::npos) {
      std::string response = pending_.substr(0, pos);
      pending_.erase(0, pos + 1);
      return obs::json_parse(response);
    }
    if (!poll_until(fd_, POLLIN, bounded, deadline)) {
      throw fail_timeout("recv");
    }
    ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if (n <= 0) {
      disconnect();
      TSPOPT_CHECK_MSG(false, "connection closed while awaiting response");
    }
    pending_.append(buf, static_cast<std::size_t>(n));
  }
}

obs::JsonValue Client::submit(const JobSpec& spec) {
  // Trace origin: mint the correlation id here when the caller did not.
  // The copy keeps the caller's spec untouched (a retry loop passing the
  // same spec reuses the id only if it carries one — submit_with_retry
  // pins it so every attempt of one logical submit shares one trace).
  JobSpec traced = spec;
  if (traced.trace_id.empty()) traced.trace_id = obs::new_trace_id();
  last_trace_id_ = traced.trace_id;

  obs::Span span = obs::Tracer::global().span("client.submit", "serve");
  if (span) {
    span.arg("engine", traced.engine);
    span.arg("trace_id", traced.trace_id);
  }
  // The submit span (when tracing is on) is the daemon-side parent; with
  // tracing off, any enclosing span on this thread still stitches.
  if (traced.parent_span == 0) traced.parent_span = obs::current_span_id();

  obs::JsonWriter w;
  w.begin_object();
  w.key("verb").value("submit");
  w.key("job").raw_value(job_spec_to_json(traced));
  w.end_object();
  obs::JsonValue response = request(w.str());
  if (span) {
    const obs::JsonValue* id = response.find("id");
    if (id != nullptr && id->kind == obs::JsonValue::Kind::kNumber) {
      span.arg("id", static_cast<std::uint64_t>(id->number));
    }
  }
  return response;
}

namespace {

std::string id_request(const char* verb, std::uint64_t id) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("verb").value(verb);
  w.key("id").value(id);
  w.end_object();
  return w.str();
}

}  // namespace

obs::JsonValue Client::status(std::uint64_t id) {
  return request(id_request("status", id));
}

obs::JsonValue Client::result(std::uint64_t id) {
  return request(id_request("result", id));
}

obs::JsonValue Client::cancel(std::uint64_t id) {
  return request(id_request("cancel", id));
}

obs::JsonValue Client::forget(std::uint64_t id) {
  return request(id_request("forget", id));
}

obs::JsonValue Client::stats() { return request("{\"verb\":\"stats\"}"); }

obs::JsonValue Client::engines() { return request("{\"verb\":\"engines\"}"); }

obs::JsonValue Client::submit_with_retry(const JobSpec& spec,
                                         double deadline_seconds) {
  // Pin the trace id across attempts: every retry of this one logical
  // submit (including a dedup answered by an earlier accept) shares one
  // trace, not one per network attempt.
  JobSpec traced = spec;
  if (traced.trace_id.empty()) traced.trace_id = obs::new_trace_id();

  auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(
                                         std::max(0.0, deadline_seconds)));
  std::mt19937 rng(static_cast<std::uint32_t>(
      Clock::now().time_since_epoch().count()));
  std::uniform_real_distribution<double> jitter(0.5, 1.5);

  double backoff_ms = 50.0;
  constexpr double kBackoffCapMs = 5000.0;
  for (;;) {
    double hint_ms = 0.0;
    try {
      if (!connected()) reconnect();
      obs::JsonValue response = submit(traced);
      const obs::JsonValue* ok = response.find("ok");
      if (ok != nullptr && ok->kind == obs::JsonValue::Kind::kBool &&
          ok->boolean) {
        return response;  // accepted (possibly deduped)
      }
      // Only capacity rejections carry retry_after_ms; anything else
      // (invalid spec, unknown engine) will never succeed by waiting.
      const obs::JsonValue* retry = response.find("retry_after_ms");
      if (retry == nullptr || retry->kind != obs::JsonValue::Kind::kNumber) {
        return response;
      }
      hint_ms = retry->number;
      if (ms_until(deadline) <= 0.0) return response;
    } catch (const CheckError&) {
      // Timeout or connection loss: the submit outcome is ambiguous —
      // retrying is exactly what idempotency keys exist for. Out of
      // time, the transport error is the caller's answer.
      if (ms_until(deadline) <= 0.0) throw;
    }
    double sleep_ms = std::max(backoff_ms * jitter(rng), hint_ms);
    sleep_ms = std::min(sleep_ms, std::max(0.0, ms_until(deadline)));
    if (sleep_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    backoff_ms = std::min(backoff_ms * 2.0, kBackoffCapMs);
  }
}

obs::JsonValue Client::wait(std::uint64_t id, double timeout_seconds,
                            double poll_interval_ms) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(timeout_seconds);
  for (;;) {
    obs::JsonValue response = status(id);
    const obs::JsonValue* ok = response.find("ok");
    if (ok == nullptr || !ok->boolean) return response;
    const obs::JsonValue* job = response.find("job");
    if (job != nullptr) {
      const obs::JsonValue* state = job->find("state");
      if (state != nullptr && state->string != "queued" &&
          state->string != "running") {
        return response;
      }
    }
    if (std::chrono::steady_clock::now() >= deadline) return response;
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(poll_interval_ms));
  }
}

}  // namespace tspopt::serve
