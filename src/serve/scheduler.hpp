// The multi-tenant solve scheduler — the embeddable solve service.
//
// A Scheduler multiplexes concurrent solve jobs over a shared
// simt::DevicePool: admission control and priority ordering come from the
// bounded JobQueue, execution from a fixed pool of worker jthreads. Each
// worker leases devices per job and builds a *per-job* engine of exactly
// the class the client requested: gpu-multi runs behind TwoOptMultiDevice
// (fault quarantine/retry state scoped to the job, never the process),
// the single-device gpu classes run as-is on a one-device lease (a fatal
// fault re-runs the attempt on a fresh lease). The worker then runs the
// ILS driver with cooperative
// stop hooks (cancellation, deadline, drain), and streams per-round
// progress into the Job record plus a per-job RunReport.
//
// Observability: the scheduler publishes serve.queue_depth /
// serve.active_jobs / serve.queue_oldest_age_ms gauges, the
// serve.job_wait_us / serve.job_run_us histograms plus the per-phase
// serve.job_phase_us{phase=wait|lease|run|settle} family, and per-outcome
// counters to the global registry (visible via the existing Prometheus
// exposition and the /metrics admin endpoint). It emits job.accepted /
// job.started / job.finished / job.rejected / job.cancelled / job.expired
// JSONL lifecycle events — each stamped with the job's distributed trace
// id when the client supplied one — and, when tracing is on, per-phase
// spans (serve.job.wait / serve.job.lease / serve.job) that share the
// client's trace id so both processes' exports merge into one timeline.
// The /tracez ring (slowest_settled()) retains the slowest settled jobs
// with their per-phase breakdown; readiness() is the /readyz signal.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/batcher.hpp"
#include "serve/job.hpp"
#include "serve/journal.hpp"
#include "serve/queue.hpp"
#include "simt/device_pool.hpp"
#include "solver/twoopt_multi.hpp"

namespace tspopt::serve {

struct SchedulerOptions {
  std::size_t workers = 2;          // worker jthreads (>= 1)
  std::size_t queue_capacity = 16;  // queued (not yet running) jobs
  // Floor for the retry-after hint on rejection; the estimate scales with
  // the observed job runtime and the backlog.
  double min_retry_after_ms = 100.0;
  // Fault policy for the per-job multi-device engines.
  MultiDeviceOptions multi;
  // A job whose engine raises a fatal error is re-run (with a fresh
  // device lease) up to this many attempts before it is marked failed.
  std::int32_t max_attempts = 2;
  // Terminal jobs (holding the full tour + report) are retained for
  // result retrieval until forget(), but at most this many: beyond the
  // cap the oldest-settled jobs are evicted, so daemon memory does not
  // grow with every job ever submitted. Minimum 1.
  std::size_t max_retained_jobs = 1024;

  // Durability: non-empty enables the write-ahead job journal in this
  // directory. On construction the scheduler replays it — settled jobs
  // come back with their retained results, queued/running jobs are
  // re-queued (running ones resume from their spool checkpoint) — before
  // any worker starts. Empty = in-memory only (PR 5 behaviour).
  std::string journal_dir;
  JournalOptions journal;
  // How often running jobs checkpoint their ILS loop state into the
  // journal's spool (iterations between checkpoint writes). Only
  // meaningful with a journal; <= 0 disables per-job checkpointing.
  std::int64_t checkpoint_every_iterations = 64;

  // Micro-batcher policy: batchable jobs sharing a batch key coalesce
  // into one batch engine pass, up to batcher.max_batch members, after a
  // linger of at most batcher.max_wait_ms. max_batch = 1 disables
  // coalescing entirely (every job runs the solo path).
  BatcherOptions batcher;
};

class Scheduler {
 public:
  // `pool` must outlive the scheduler. The destructor performs
  // shutdown(/*drain=*/false): running jobs are stopped cooperatively and
  // the backlog is cancelled.
  Scheduler(simt::DevicePool& pool, SchedulerOptions options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  struct Admission {
    bool accepted = false;
    std::uint64_t id = 0;          // valid when accepted
    double retry_after_ms = 0.0;   // > 0 when rejected for capacity
    std::string error;             // non-empty when rejected as invalid
    // True when the spec's idempotency_key matched an already-accepted
    // job: `id` is that job's id and nothing new was enqueued.
    bool deduped = false;
  };

  // Validate and enqueue. Rejections are immediate: invalid specs (unknown
  // engine, unknown catalog name, bad payload) carry `error`; a full queue
  // carries `retry_after_ms` backpressure.
  Admission submit(JobSpec spec);

  // nullptr for unknown ids. Terminal jobs are retained until forget()
  // or eviction under options().max_retained_jobs, oldest-settled first.
  std::shared_ptr<const Job> find(std::uint64_t id) const;
  // Drop a terminal job from the table; false if unknown or still live.
  bool forget(std::uint64_t id);

  // Cooperative cancel. True if the job was queued or running (the
  // transition to kCancelled may land asynchronously for running jobs).
  bool cancel(std::uint64_t id);

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected_full = 0;
    std::uint64_t rejected_invalid = 0;
    std::uint64_t finished = 0;
    std::uint64_t failed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t expired = 0;
    std::uint64_t retries = 0;
    std::uint64_t recovered = 0;  // jobs re-queued by journal replay
    std::uint64_t batches = 0;       // coalesced (>= 2 member) batch passes
    std::uint64_t batched_jobs = 0;  // jobs that ran inside those batches
    std::size_t queue_depth = 0;
    std::size_t active_jobs = 0;
    std::size_t workers = 0;
    std::size_t devices = 0;
    std::size_t devices_available = 0;
  };
  Stats stats() const;

  // One settled job's per-phase pipeline timing, retained for /tracez.
  // Phases a job never reached (e.g. lease for a CPU engine, or run for a
  // job cancelled while queued) read 0.
  struct JobTraceSummary {
    std::uint64_t id = 0;
    std::string trace_id;  // empty when the client sent none
    std::string engine;
    JobState state = JobState::kFinished;
    double wait_ms = 0.0;
    double lease_ms = 0.0;
    double run_ms = 0.0;
    double settle_ms = 0.0;
    std::int64_t best_length = -1;
    // Micro-batch membership: 0 = ran solo, otherwise the coalesced batch
    // this job was a member of and how many members it carried.
    std::uint64_t batch_id = 0;
    std::int32_t batch_occupancy = 0;
    double total_ms() const { return wait_ms + lease_ms + run_ms + settle_ms; }
  };
  // The slowest settled jobs by total pipeline time, slowest first (ring
  // of at most kTracezCapacity entries — slow outliers stay visible even
  // after thousands of fast jobs settle behind them).
  static constexpr std::size_t kTracezCapacity = 32;
  std::vector<JobTraceSummary> slowest_settled() const;

  // The bucket layout of the serve.job_wait_us / serve.job_run_us /
  // serve.job_phase_us histograms, for callers (the /statusz phase table)
  // that need to look the instruments up in the global registry.
  static const std::vector<double>& latency_buckets_us();

  // Every retained non-terminal job (queued + running), ascending id —
  // the /statusz "active jobs" table.
  std::vector<std::shared_ptr<const Job>> active_snapshot() const;

  // Readiness for /readyz: ready means the service can accept AND durably
  // record AND eventually run a job. `reason` names the failing leg.
  struct Readiness {
    bool ready = true;
    std::string reason;  // "draining" | "journal unhealthy" | ...
  };
  Readiness readiness() const;

  double queue_oldest_age_ms() const { return queue_.oldest_age_ms(); }

  // Stop admission and block until every queued and running job reached a
  // terminal state — the SIGTERM path. Idempotent.
  void drain();

  // drain=true: as drain(), then stop workers. drain=false: cancel the
  // backlog, stop running jobs at their next hook poll, stop workers.
  void shutdown(bool drain_first);

  const SchedulerOptions& options() const { return options_; }
  // The journal, when durability is enabled; nullptr otherwise.
  const Journal* journal() const { return journal_.get(); }
  // The micro-batcher (always present; max_batch = 1 makes it inert).
  const Batcher& batcher() const { return batcher_; }

 private:
  void worker_loop(std::size_t worker_index);
  void run_job(const std::shared_ptr<Job>& job);
  // Run a coalesced batch: one PopulationIls pass sequence with one
  // member per job, settling every member individually. Falls back to
  // run_job for a batch of one.
  void run_batch(std::vector<std::shared_ptr<Job>> batch);
  // Claim the start of a popped job (wait accounting + the queued ->
  // running transition, resolving cancel/deadline races). False when the
  // job settled here instead of starting.
  bool begin_running(const std::shared_ptr<Job>& job);
  // One solve attempt: lease devices, build the engine, run ILS. Throws on
  // fatal engine errors (the retry loop in run_job catches); returns the
  // terminal state the job should settle into.
  JobState execute_attempt(const std::shared_ptr<Job>& job,
                           std::int32_t attempt);
  // One coalesced attempt over the whole batch: one lease, one batch
  // engine, one PopulationIls run with a member per job. Returns each
  // member's terminal state (aligned with `members`); throws on fatal
  // engine errors — there is no batch-level retry, run_batch fails the
  // unsettled members (at-least-once semantics still hold through the
  // journal, like any other failed attempt).
  std::vector<JobState> execute_batch(
      const std::vector<std::shared_ptr<Job>>& members,
      std::uint64_t batch_id);
  // Account a job that reached `terminal` (log event, counters, drain cv).
  void settle(const std::shared_ptr<Job>& job, JobState terminal);
  double estimate_retry_after_ms() const;
  void note_run_seconds(double seconds);
  // Replay the journal into jobs_/queue_ (ctor only, before workers).
  void recover_from_journal();

  simt::DevicePool& pool_;
  SchedulerOptions options_;
  JobQueue queue_;
  Batcher batcher_;
  std::unique_ptr<Journal> journal_;  // nullptr = durability off
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> next_batch_id_{1};
  std::atomic<bool> stop_all_{false};
  std::atomic<bool> shut_down_{false};

  mutable std::mutex jobs_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  // idempotency_key -> job id, for submit() dedup. Entries live exactly
  // as long as the job is retained (erased on forget/evict) and are
  // rebuilt from the journal on recovery.
  std::unordered_map<std::string, std::uint64_t> idempotency_;
  // Settle order of terminal jobs, oldest first — the eviction queue that
  // enforces options_.max_retained_jobs. May hold ids already removed by
  // forget(); eviction skips those.
  std::deque<std::uint64_t> terminal_order_;

  mutable std::mutex drain_mu_;
  std::condition_variable drain_cv_;
  std::size_t live_jobs_ = 0;  // queued + running (accepted, not terminal)

  // /tracez ring: the kTracezCapacity slowest settled jobs. Unordered in
  // storage; slowest_settled() sorts on read (reads are rare scrapes).
  mutable std::mutex tracez_mu_;
  std::vector<JobTraceSummary> tracez_;

  // EMA of completed-job run time, feeding the retry-after estimate.
  std::atomic<double> ema_run_ms_{0.0};

  // Counters/gauges/histograms resolved once; hot paths touch atomics.
  struct Instruments;
  std::unique_ptr<Instruments> m_;

  std::atomic<std::uint64_t> n_accepted_{0}, n_rejected_full_{0},
      n_rejected_invalid_{0}, n_finished_{0}, n_failed_{0}, n_cancelled_{0},
      n_expired_{0}, n_retries_{0}, n_recovered_{0}, n_batches_{0},
      n_batched_jobs_{0};
  std::atomic<std::size_t> active_{0};

  std::vector<std::jthread> workers_;  // last member: joins before teardown
};

}  // namespace tspopt::serve
