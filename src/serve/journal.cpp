#include "serve/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <functional>
#include <string_view>
#include <utility>

#include "common/check.hpp"
#include "obs/log.hpp"
#include "obs/registry.hpp"

namespace tspopt::serve {

namespace fs = std::filesystem;

namespace {

constexpr std::size_t kRecordHeaderBytes = 12;  // u32 len + u64 fnv1a
// A single record larger than this is a corrupt length field, not a big
// job: the largest legitimate payload (an inline 100k-point spec or a
// 744k-city result order) stays well under it.
constexpr std::uint32_t kMaxRecordBytes = 256u << 20;

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string encode_record(const std::string& payload) {
  std::string rec;
  rec.reserve(kRecordHeaderBytes + payload.size());
  auto len = static_cast<std::uint32_t>(payload.size());
  std::uint64_t sum = fnv1a(payload);
  rec.append(reinterpret_cast<const char*>(&len), sizeof(len));
  rec.append(reinterpret_cast<const char*>(&sum), sizeof(sum));
  rec += payload;
  return rec;
}

bool write_fully(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

bool parse_job_state(const std::string& name, JobState* out) {
  for (JobState s : {JobState::kQueued, JobState::kRunning,
                     JobState::kFinished, JobState::kCancelled,
                     JobState::kExpired, JobState::kFailed}) {
    if (name == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

// Re-render a parsed member verbatim (the journal keeps raw fragments so
// snapshots never pass through the wire schema again).
std::string raw_fragment(const obs::JsonValue& value) {
  obs::JsonWriter w;
  obs::write_json_value(w, value);
  return w.str();
}

void fsync_directory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

struct Journal::Metrics {
  obs::Counter& appends;
  obs::Counter& append_errors;
  obs::Counter& fsyncs;
  obs::Counter& fsync_errors;
  obs::Counter& rotations;
  obs::Counter& torn_tails;

  explicit Metrics(obs::Registry& r)
      : appends(r.counter("serve.journal_appends")),
        append_errors(r.counter("serve.journal_append_errors")),
        fsyncs(r.counter("serve.journal_fsyncs")),
        fsync_errors(r.counter("serve.journal_fsync_errors")),
        rotations(r.counter("serve.journal_rotations")),
        torn_tails(r.counter("serve.journal_torn_tails")) {}
};

Journal::Journal(std::string dir, JournalOptions options)
    : dir_(std::move(dir)),
      options_(options),
      m_(std::make_unique<Metrics>(obs::Registry::global())) {
  TSPOPT_CHECK_MSG(!dir_.empty(), "journal directory must be non-empty");
  std::error_code ec;
  fs::create_directories(spool_dir(), ec);
  TSPOPT_CHECK_MSG(!ec, "cannot create journal directory " << dir_ << ": "
                                                           << ec.message());
}

Journal::~Journal() {
  std::lock_guard lock(mu_);
  if (fd_ >= 0) {
    fsync_active_locked(/*force=*/true);
    ::close(fd_);
    fd_ = -1;
  }
}

std::string Journal::spool_dir() const { return dir_ + "/spool"; }

std::string Journal::checkpoint_path(std::uint64_t id) const {
  return spool_dir() + "/job-" + std::to_string(id) + ".ckpt";
}

std::string Journal::segment_path(std::uint64_t seq) const {
  char name[32];
  std::snprintf(name, sizeof(name), "segment-%06llu.wal",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + name;
}

Journal::ReplayResult Journal::open_and_replay() {
  std::lock_guard lock(mu_);
  TSPOPT_CHECK_MSG(!opened_, "journal already opened");
  if (options_.faults) options_.faults->reach_phase("open");

  // Discover segments, ascending sequence order.
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    std::string name = entry.path().filename().string();
    unsigned long long seq = 0;
    if (std::sscanf(name.c_str(), "segment-%6llu.wal", &seq) == 1 &&
        name.size() == std::strlen("segment-000000.wal")) {
      segments.emplace_back(seq, entry.path().string());
    }
  }
  std::sort(segments.begin(), segments.end());

  ReplayResult rep;
  std::uint64_t max_seq = 0;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const bool last_segment = s + 1 == segments.size();
    max_seq = std::max(max_seq, segments[s].first);
    std::string bytes;
    {
      std::FILE* f = std::fopen(segments[s].second.c_str(), "rb");
      if (f == nullptr) continue;
      char buf[1u << 16];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
      std::fclose(f);
    }

    std::size_t pos = 0;
    while (pos < bytes.size()) {
      auto fail = [&](bool truncated) {
        // A bad record that runs to end-of-file in the final segment is
        // the expected crash artifact (torn tail): drop it quietly-but-
        // loudly. Anything else is corruption: skip the segment's rest.
        bool reaches_eof = truncated;
        if (last_segment && reaches_eof) {
          ++n_torn_tails_;
          m_->torn_tails.add();
          rep.torn_tail = true;
          obs::Log::global()
              .event(obs::LogLevel::kWarn, "journal.torn_tail")
              .arg("segment", segments[s].second)
              .arg("offset", static_cast<std::uint64_t>(pos))
              .arg("trailing_bytes",
                   static_cast<std::uint64_t>(bytes.size() - pos));
        } else {
          rep.corrupt = true;
          obs::Log::global()
              .event(obs::LogLevel::kWarn, "journal.corrupt")
              .arg("segment", segments[s].second)
              .arg("offset", static_cast<std::uint64_t>(pos));
        }
      };

      if (bytes.size() - pos < kRecordHeaderBytes) {
        fail(/*truncated=*/true);
        break;
      }
      std::uint32_t len = 0;
      std::uint64_t sum = 0;
      std::memcpy(&len, bytes.data() + pos, sizeof(len));
      std::memcpy(&sum, bytes.data() + pos + sizeof(len), sizeof(sum));
      if (len > kMaxRecordBytes) {
        fail(/*truncated=*/false);
        break;
      }
      if (bytes.size() - pos - kRecordHeaderBytes < len) {
        fail(/*truncated=*/true);
        break;
      }
      std::string_view payload(bytes.data() + pos + kRecordHeaderBytes, len);
      bool final_record = pos + kRecordHeaderBytes + len == bytes.size();
      if (fnv1a(payload) != sum) {
        // A checksum mismatch on the very last record is a torn write
        // (the length landed, the tail did not); earlier it is rot.
        fail(/*truncated=*/final_record);
        break;
      }
      try {
        apply_to_digest(obs::json_parse(payload));
        ++rep.records_read;
      } catch (const CheckError&) {
        fail(/*truncated=*/final_record);
        break;
      }
      pos += kRecordHeaderBytes + len;
    }
    ++rep.segments_read;
  }

  // Fold the digest into the caller's recovery view.
  for (const auto& [id, entry] : digest_) {
    RecoveredJob job;
    job.id = id;
    try {
      job.spec = job_spec_from_json(obs::json_parse(entry.job_json));
    } catch (const CheckError& e) {
      obs::Log::global()
          .event(obs::LogLevel::kWarn, "journal.bad_spec")
          .arg("id", id)
          .arg("error", e.what());
      continue;
    }
    JobState state = JobState::kQueued;
    if (!parse_job_state(entry.state, &state)) continue;
    job.state = state;
    job.attempts = entry.attempts;
    job.error = entry.error;
    if (!entry.result_json.empty()) {
      try {
        job.result = job_result_from_json(obs::json_parse(entry.result_json));
      } catch (const CheckError& e) {
        obs::Log::global()
            .event(obs::LogLevel::kWarn, "journal.bad_result")
            .arg("id", id)
            .arg("error", e.what());
      }
    }
    rep.jobs.push_back(std::move(job));
  }
  rep.next_id = max_id_ + 1;

  // Every restart is a compaction: snapshot the digest into a fresh
  // segment, make it the active one, drop the history.
  std::uint64_t next_seq = max_seq + 1;
  TSPOPT_CHECK_MSG(write_snapshot_segment(next_seq),
                   "cannot write journal snapshot segment in " << dir_);
  fd_ = ::open(segment_path(next_seq).c_str(), O_WRONLY | O_APPEND);
  TSPOPT_CHECK_MSG(fd_ >= 0, "cannot open journal segment "
                                 << segment_path(next_seq) << ": "
                                 << std::strerror(errno));
  active_seq_ = next_seq;
  std::error_code size_ec;
  active_bytes_ = static_cast<std::size_t>(
      fs::file_size(segment_path(next_seq), size_ec));
  for (const auto& [seq, path] : segments) {
    std::error_code rm;
    fs::remove(path, rm);
  }
  last_fsync_ = std::chrono::steady_clock::now();
  opened_ = true;

  obs::Log::global()
      .event(obs::LogLevel::kInfo, "journal.open")
      .arg("dir", dir_)
      .arg("segments", static_cast<std::uint64_t>(rep.segments_read))
      .arg("records", static_cast<std::uint64_t>(rep.records_read))
      .arg("jobs", static_cast<std::uint64_t>(rep.jobs.size()))
      .arg("torn_tail", rep.torn_tail)
      .arg("corrupt", rep.corrupt);
  return rep;
}

void Journal::apply_to_digest(const obs::JsonValue& record) {
  const obs::JsonValue& type = record.at("type");
  TSPOPT_CHECK_MSG(type.kind == obs::JsonValue::Kind::kString,
                   "journal record \"type\" must be a string");
  const obs::JsonValue& id_value = record.at("id");
  TSPOPT_CHECK_MSG(id_value.kind == obs::JsonValue::Kind::kNumber &&
                       id_value.number >= 1,
                   "journal record \"id\" must be a positive number");
  auto id = static_cast<std::uint64_t>(id_value.number);
  max_id_ = std::max(max_id_, id);

  if (type.string == "accepted" || type.string == "job") {
    DigestEntry entry;
    entry.job_json = raw_fragment(record.at("job"));
    if (const obs::JsonValue* state = record.find("state")) {
      entry.state = state->string;
    }
    if (const obs::JsonValue* attempts = record.find("attempts")) {
      entry.attempts = static_cast<std::int32_t>(attempts->number);
    }
    if (const obs::JsonValue* result = record.find("result")) {
      entry.result_json = raw_fragment(*result);
    }
    if (const obs::JsonValue* error = record.find("error")) {
      entry.error = error->string;
    }
    digest_[id] = std::move(entry);
    return;
  }

  auto it = digest_.find(id);
  if (it == digest_.end()) return;  // transition for a compacted-away job
  if (type.string == "started") {
    it->second.state = "running";
    if (const obs::JsonValue* attempts = record.find("attempts")) {
      it->second.attempts = static_cast<std::int32_t>(attempts->number);
    }
  } else if (type.string == "settled") {
    it->second.state = record.at("state").string;
    if (const obs::JsonValue* result = record.find("result")) {
      it->second.result_json = raw_fragment(*result);
    }
    if (const obs::JsonValue* error = record.find("error")) {
      it->second.error = error->string;
    }
  } else if (type.string == "rejected" || type.string == "forgotten") {
    digest_.erase(it);
  }
  // Unknown types are skipped: a newer daemon's records must not brick an
  // older one replaying the same directory.
}

bool Journal::append_record(const char* phase, const std::string& payload) {
  // mu_ held by caller (append()).
  if (options_.faults) options_.faults->reach_phase(phase);
  if (wedged_) {
    ++n_append_errors_;
    m_->append_errors.add();
    last_append_ok_ = false;
    return false;
  }
  FaultPlan::AppendFate fate;
  if (options_.faults) fate = options_.faults->next_append();

  std::string record = encode_record(payload);
  if (fate.fail_write) {
    ++n_append_errors_;
    m_->append_errors.add();
    last_append_ok_ = false;
    obs::Log::global()
        .event(obs::LogLevel::kWarn, "journal.append_error")
        .arg("phase", phase)
        .arg("error", "injected write failure");
    return false;
  }
  if (fate.tear) {
    std::size_t keep =
        std::min(options_.faults->tear_keep_bytes, record.size());
    write_fully(fd_, record.data(), keep);
    ::fsync(fd_);
    wedged_ = true;
    ++n_append_errors_;
    ++n_torn_tails_;
    last_append_ok_ = false;
    m_->append_errors.add();
    m_->torn_tails.add();
    obs::Log::global()
        .event(obs::LogLevel::kWarn, "journal.append_error")
        .arg("phase", phase)
        .arg("error", "injected torn write; journal wedged");
    return false;
  }
  if (!write_fully(fd_, record.data(), record.size())) {
    ++n_append_errors_;
    m_->append_errors.add();
    last_append_ok_ = false;
    obs::Log::global()
        .event(obs::LogLevel::kWarn, "journal.append_error")
        .arg("phase", phase)
        .arg("error", std::strerror(errno));
    return false;
  }
  last_append_ok_ = true;
  ++n_appends_;
  m_->appends.add();
  n_bytes_ += record.size();
  active_bytes_ += record.size();
  return true;
}

bool Journal::fsync_active_locked(bool force) {
  if (fd_ < 0) return true;
  if (!force) {
    if (options_.fsync_interval_ms < 0.0) return true;
    auto now = std::chrono::steady_clock::now();
    if (options_.fsync_interval_ms > 0.0 &&
        std::chrono::duration<double, std::milli>(now - last_fsync_).count() <
            options_.fsync_interval_ms) {
      return true;
    }
  }
  last_fsync_ = std::chrono::steady_clock::now();
  if (options_.faults && options_.faults->next_fsync_fails()) {
    ++n_fsync_errors_;
    m_->fsync_errors.add();
    last_fsync_ok_ = false;
    obs::Log::global()
        .event(obs::LogLevel::kWarn, "journal.fsync_error")
        .arg("error", "injected fsync failure");
    return false;
  }
  if (::fsync(fd_) != 0) {
    ++n_fsync_errors_;
    m_->fsync_errors.add();
    last_fsync_ok_ = false;
    obs::Log::global()
        .event(obs::LogLevel::kWarn, "journal.fsync_error")
        .arg("error", std::strerror(errno));
    return false;
  }
  last_fsync_ok_ = true;
  ++n_fsyncs_;
  m_->fsyncs.add();
  return true;
}

std::string Journal::snapshot_payload(std::uint64_t id,
                                      const DigestEntry& e) const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("type").value("job");
  w.key("id").value(id);
  w.key("state").value(e.state);
  if (e.attempts > 0) w.key("attempts").value(e.attempts);
  w.key("job").raw_value(e.job_json);
  if (!e.result_json.empty()) w.key("result").raw_value(e.result_json);
  if (!e.error.empty()) w.key("error").value(e.error);
  w.end_object();
  return w.str();
}

bool Journal::write_snapshot_segment(std::uint64_t seq) {
  std::string path = segment_path(seq);
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return false;
  bool ok = true;
  for (const auto& [id, entry] : digest_) {
    std::string record = encode_record(snapshot_payload(id, entry));
    if (!write_fully(fd, record.data(), record.size())) {
      ok = false;
      break;
    }
  }
  ok = ok && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  fsync_directory(dir_);
  return true;
}

bool Journal::maybe_rotate_locked() {
  if (active_bytes_ <= options_.max_segment_bytes &&
      settled_since_rotate_ < std::max<std::size_t>(1,
                                                    options_.compact_min_settled)) {
    return true;
  }
  if (options_.faults) options_.faults->reach_phase("rotate");
  std::uint64_t next_seq = active_seq_ + 1;
  if (!write_snapshot_segment(next_seq)) {
    obs::Log::global()
        .event(obs::LogLevel::kWarn, "journal.rotate_error")
        .arg("segment", segment_path(next_seq));
    return false;
  }
  int fd = ::open(segment_path(next_seq).c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    std::error_code rm;
    fs::remove(segment_path(next_seq), rm);
    return false;
  }
  ::close(fd_);
  fd_ = fd;
  std::error_code rm;
  fs::remove(segment_path(active_seq_), rm);
  std::error_code size_ec;
  active_bytes_ = static_cast<std::size_t>(
      fs::file_size(segment_path(next_seq), size_ec));
  active_seq_ = next_seq;
  settled_since_rotate_ = 0;
  ++n_rotations_;
  m_->rotations.add();
  obs::Log::global()
      .event(obs::LogLevel::kInfo, "journal.rotate")
      .arg("segment", segment_path(next_seq))
      .arg("bytes", static_cast<std::uint64_t>(active_bytes_))
      .arg("jobs", static_cast<std::uint64_t>(digest_.size()));
  return true;
}

bool Journal::append_accepted(const Job& job) {
  std::string job_json = job_spec_to_json(job.spec());
  obs::JsonWriter w;
  w.begin_object();
  w.key("type").value("accepted");
  w.key("id").value(job.id());
  w.key("job").raw_value(job_json);
  w.end_object();

  std::lock_guard lock(mu_);
  TSPOPT_CHECK_MSG(opened_, "journal not opened");
  if (!append_record("append:accepted", w.str())) return false;
  DigestEntry entry;
  entry.job_json = std::move(job_json);
  digest_[job.id()] = std::move(entry);
  max_id_ = std::max(max_id_, job.id());
  fsync_active_locked(/*force=*/false);
  maybe_rotate_locked();
  return true;
}

bool Journal::append_started(std::uint64_t id, std::int32_t attempt) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("type").value("started");
  w.key("id").value(id);
  w.key("attempts").value(attempt);
  w.end_object();

  std::lock_guard lock(mu_);
  TSPOPT_CHECK_MSG(opened_, "journal not opened");
  if (!append_record("append:started", w.str())) return false;
  auto it = digest_.find(id);
  if (it != digest_.end()) {
    it->second.state = "running";
    it->second.attempts = attempt;
  }
  fsync_active_locked(/*force=*/false);
  maybe_rotate_locked();
  return true;
}

bool Journal::append_settled(const Job& job, JobState state) {
  std::string result_json;
  if (state == JobState::kFinished) {
    obs::JsonWriter rw;
    write_job_result(rw, job.result());
    result_json = rw.str();
  }
  std::string error = job.error();

  obs::JsonWriter w;
  w.begin_object();
  w.key("type").value("settled");
  w.key("id").value(job.id());
  w.key("state").value(to_string(state));
  if (!result_json.empty()) w.key("result").raw_value(result_json);
  if (!error.empty()) w.key("error").value(error);
  w.end_object();

  std::lock_guard lock(mu_);
  TSPOPT_CHECK_MSG(opened_, "journal not opened");
  if (!append_record("append:settled", w.str())) return false;
  auto it = digest_.find(job.id());
  if (it != digest_.end()) {
    it->second.state = to_string(state);
    it->second.result_json = std::move(result_json);
    it->second.error = std::move(error);
  }
  ++settled_since_rotate_;
  fsync_active_locked(/*force=*/false);
  maybe_rotate_locked();
  return true;
}

bool Journal::append_rejected(std::uint64_t id) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("type").value("rejected");
  w.key("id").value(id);
  w.end_object();

  std::lock_guard lock(mu_);
  TSPOPT_CHECK_MSG(opened_, "journal not opened");
  if (!append_record("append:rejected", w.str())) return false;
  digest_.erase(id);
  fsync_active_locked(/*force=*/false);
  maybe_rotate_locked();
  return true;
}

bool Journal::append_forgotten(std::uint64_t id) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("type").value("forgotten");
  w.key("id").value(id);
  w.end_object();

  std::lock_guard lock(mu_);
  TSPOPT_CHECK_MSG(opened_, "journal not opened");
  if (!append_record("append:forgotten", w.str())) return false;
  digest_.erase(id);
  ++settled_since_rotate_;
  fsync_active_locked(/*force=*/false);
  maybe_rotate_locked();
  return true;
}

void Journal::flush() {
  std::lock_guard lock(mu_);
  fsync_active_locked(/*force=*/true);
}

Journal::Stats Journal::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.appends = n_appends_;
  s.append_errors = n_append_errors_;
  s.bytes = n_bytes_;
  s.fsyncs = n_fsyncs_;
  s.fsync_errors = n_fsync_errors_;
  s.rotations = n_rotations_;
  s.torn_tails = n_torn_tails_;
  s.last_append_ok = last_append_ok_;
  s.last_fsync_ok = last_fsync_ok_;
  s.active_segment = active_seq_;
  s.active_bytes = active_bytes_;
  for (const auto& [id, entry] : digest_) {
    (void)id;
    JobState state = JobState::kQueued;
    bool settled =
        parse_job_state(entry.state, &state) && is_terminal(state);
    if (settled) {
      ++s.settled_jobs;
    } else {
      ++s.live_jobs;
    }
  }
  return s;
}

bool Journal::healthy() const {
  std::lock_guard lock(mu_);
  return !wedged_ && last_append_ok_ && last_fsync_ok_;
}

}  // namespace tspopt::serve
