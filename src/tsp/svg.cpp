#include "tsp/svg.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>

#include "common/check.hpp"

namespace tspopt {

void write_svg(std::ostream& out, const Instance& instance, const Tour* tour,
               const SvgStyle& style) {
  TSPOPT_CHECK_MSG(instance.has_coordinates(), "SVG needs coordinates");
  if (tour != nullptr) {
    TSPOPT_CHECK(tour->n() == instance.n());
    TSPOPT_CHECK_MSG(tour->is_valid(), "refusing to render an invalid tour");
  }
  TSPOPT_CHECK(style.width > 2 * style.margin);

  auto [lo, hi] = instance.bounding_box();
  double span_x = std::max(1.0, static_cast<double>(hi.x) - lo.x);
  double span_y = std::max(1.0, static_cast<double>(hi.y) - lo.y);
  double drawable = style.width - 2 * style.margin;
  double scale = drawable / span_x;
  double height = span_y * scale + 2 * style.margin;

  auto px = [&](const Point& p) {
    return style.margin + (static_cast<double>(p.x) - lo.x) * scale;
  };
  auto py = [&](const Point& p) {
    // Flip y: SVG grows downward, map coordinates grow upward.
    return height - style.margin - (static_cast<double>(p.y) - lo.y) * scale;
  };

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << style.width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << style.width << ' '
      << height << "\">\n";

  if (tour != nullptr) {
    out << "  <path fill=\"none\" stroke=\"" << style.edge_color
        << "\" stroke-width=\"" << style.edge_width << "\" d=\"";
    for (std::int32_t p = 0; p < tour->n(); ++p) {
      const Point& pt = instance.point(tour->city_at(p));
      out << (p == 0 ? 'M' : 'L') << px(pt) << ' ' << py(pt) << ' ';
    }
    if (style.close_tour) out << 'Z';
    out << "\"/>\n";
  }

  if (style.point_radius > 0.0) {
    for (std::int32_t c = 0; c < instance.n(); ++c) {
      const Point& pt = instance.point(c);
      out << "  <circle cx=\"" << px(pt) << "\" cy=\"" << py(pt)
          << "\" r=\"" << style.point_radius << "\" fill=\""
          << style.point_color << "\"/>\n";
    }
  }
  out << "</svg>\n";
}

void save_svg(const std::string& path, const Instance& instance,
              const Tour* tour, const SvgStyle& style) {
  std::ofstream out(path);
  TSPOPT_CHECK_MSG(out.good(), "cannot write SVG file: " << path);
  write_svg(out, instance, tour, style);
}

}  // namespace tspopt
