// Structure-of-arrays coordinate view.
//
// The CPU analogue of the paper's coalesced float2 layout: the
// route-ordered Point array splits into two contiguous float arrays so W
// consecutive positions load as two vector registers. Each array carries
// n + 1 entries — the extra entry duplicates position 0, the same +1
// successor staging the tiled engine gives each range, so kernels read
// xs[p + 1] for any position p without a wraparound branch.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "tsp/point.hpp"

namespace tspopt {

class SoaCoords {
 public:
  // Rebuild from route-ordered points. Reuses capacity: steady-state
  // re-staging (every 2-opt pass) does not allocate.
  void assign_ordered(std::span<const Point> ordered) {
    n_ = static_cast<std::int32_t>(ordered.size());
    xs_.resize(ordered.size() + 1);
    ys_.resize(ordered.size() + 1);
    for (std::size_t p = 0; p < ordered.size(); ++p) {
      xs_[p] = ordered[p].x;
      ys_[p] = ordered[p].y;
    }
    close();
  }

  // Size without populating (callers that fill xs()/ys() directly, e.g.
  // route-ordering straight from the instance). close() seals the wrap.
  void resize(std::int32_t n) {
    TSPOPT_CHECK(n >= 0);
    n_ = n;
    xs_.resize(static_cast<std::size_t>(n) + 1);
    ys_.resize(static_cast<std::size_t>(n) + 1);
  }

  // Seal the +1 successor entry: position n wraps to position 0.
  void close() {
    TSPOPT_CHECK(n_ >= 1);
    xs_[static_cast<std::size_t>(n_)] = xs_[0];
    ys_[static_cast<std::size_t>(n_)] = ys_[0];
  }

  std::int32_t n() const { return n_; }
  const float* xs() const { return xs_.data(); }
  const float* ys() const { return ys_.data(); }
  float* xs() { return xs_.data(); }
  float* ys() { return ys_.data(); }

 private:
  std::int32_t n_ = 0;
  std::vector<float> xs_;  // n + 1 entries, [n] == [0]
  std::vector<float> ys_;
};

}  // namespace tspopt
