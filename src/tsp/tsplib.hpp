// TSPLIB file format reader/writer.
//
// Supports symmetric TSP instances: TYPE TSP, NODE_COORD_SECTION with any of
// the coordinate metrics, and EXPLICIT instances with FULL_MATRIX,
// UPPER_ROW, LOWER_ROW, UPPER_DIAG_ROW or LOWER_DIAG_ROW weight sections.
// Reference: Reinelt, "TSPLIB — A Traveling Salesman Problem Library",
// ORSA Journal on Computing 3(4), 1991 (the paper's instance source, [9]).
#pragma once

#include <iosfwd>
#include <string>

#include "tsp/instance.hpp"

namespace tspopt {

// Parse a TSPLIB-format stream/file. Throws CheckError with a descriptive
// message on malformed input or unsupported features (e.g. TYPE ATSP).
Instance parse_tsplib(std::istream& in);
Instance load_tsplib(const std::string& path);

// Write a coordinate-based instance in TSPLIB format (NODE_COORD_SECTION).
void write_tsplib(std::ostream& out, const Instance& instance);
void save_tsplib(const std::string& path, const Instance& instance);

}  // namespace tspopt
