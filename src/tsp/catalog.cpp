#include "tsp/catalog.hpp"

#include <utility>

#include "common/check.hpp"
#include "tsp/generator.hpp"

namespace tspopt {

namespace {

// FNV-1a, used to derive a stable per-instance generator seed from the name.
std::uint64_t name_seed(const std::string& name) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::vector<CatalogEntry> build_paper_catalog() {
  using F = PointFamily;
  // Sizes are the paper's; kernel/total times are the legible Table II
  // (GTX 680, CUDA) entries in microseconds.
  return {
      {"berlin52", 52, F::kReal, 20, 81},
      {"kroE100", 100, F::kUniform, 21, 82},
      {"ch130", 130, F::kUniform, 21, 82},
      {"ch150", 150, F::kUniform, 23, 84},
      {"kroA200", 200, F::kUniform, 24, 85},
      {"ts225", 225, F::kGrid, 24, 85},
      {"pr226", 226, F::kClustered, 26, 87},
      {"pr439", 439, F::kClustered, 32, 93},
      {"rat783", 783, F::kGrid, 53, 115},
      {"vm1084", 1084, F::kUniform, 80, 142},
      {"pr2392", 2392, F::kClustered, 299, 363},
      {"pcb3038", 3038, F::kClustered, 481, 547},
      {"fl3795", 3795, F::kClustered, 723, 788},
      {"fnl4461", 4461, F::kGrid, 746, 815},
      {"rl5915", 5915, F::kUniform, 1009, 1079},
      {"pla7397", 7397, F::kClustered, 1547, 1616},
      {"usa13509", 13509, F::kUniform, 4728, 4805},
      {"d15112", 15112, F::kGrid, 5963, 6043},
      {"d18512", 18512, F::kGrid, 8928, 9014},
      {"sw24978", 24978, F::kGrid, -1, -1},
      {"pla33810", 33810, F::kClustered, -1, -1},
      {"pla85900", 85900, F::kClustered, -1, -1},
      {"sra104815", 104815, F::kUniform, -1, -1},
      {"usa115475", 115475, F::kUniform, -1, -1},
      {"ara238025", 238025, F::kUniform, -1, -1},
      {"lra498378", 498378, F::kUniform, -1, -1},
      {"lrb744710", 744710, F::kUniform, -1, -1},
  };
}

std::vector<CatalogEntry> build_table1_catalog() {
  // Table I lists these 13 instances (kroE100 ... fnl4461).
  const char* names[] = {"kroE100", "ch130",   "ch150",  "kroA200", "ts225",
                         "pr226",   "pr439",   "rat783", "vm1084",  "pr2392",
                         "pcb3038", "fl3795",  "fnl4461"};
  std::vector<CatalogEntry> out;
  for (const char* name : names) {
    auto e = find_catalog_entry(name);
    TSPOPT_CHECK(e.has_value());
    out.push_back(*e);
  }
  return out;
}

}  // namespace

const std::vector<CatalogEntry>& paper_catalog() {
  static const std::vector<CatalogEntry> catalog = build_paper_catalog();
  return catalog;
}

const std::vector<CatalogEntry>& table1_catalog() {
  static const std::vector<CatalogEntry> catalog = build_table1_catalog();
  return catalog;
}

std::optional<CatalogEntry> find_catalog_entry(const std::string& name) {
  for (const CatalogEntry& e : paper_catalog()) {
    if (e.name == name) return e;
  }
  return std::nullopt;
}

Instance make_catalog_instance(const CatalogEntry& entry) {
  std::uint64_t seed = name_seed(entry.name);
  switch (entry.family) {
    case PointFamily::kReal:
      TSPOPT_CHECK_MSG(entry.name == "berlin52",
                       "only berlin52 ships with real data");
      return berlin52();
    case PointFamily::kUniform:
      return generate_uniform(entry.name, entry.n, seed);
    case PointFamily::kClustered:
      return generate_clustered(entry.name, entry.n,
                                std::max(4, entry.n / 300), seed);
    case PointFamily::kGrid:
      return generate_grid(entry.name, entry.n, seed);
  }
  TSPOPT_CHECK(false);
  return berlin52();  // unreachable
}

Instance berlin52() {
  // Genuine TSPLIB berlin52 coordinates (Reinelt 1991); EUC_2D, optimal
  // tour length 7542.
  static const Point kPoints[52] = {
      {565, 575},   {25, 185},    {345, 750},  {945, 685},  {845, 655},
      {880, 660},   {25, 230},    {525, 1000}, {580, 1175}, {650, 1130},
      {1605, 620},  {1220, 580},  {1465, 200}, {1530, 5},   {845, 680},
      {725, 370},   {145, 665},   {415, 635},  {510, 875},  {560, 365},
      {300, 465},   {520, 585},   {480, 415},  {835, 625},  {975, 580},
      {1215, 245},  {1320, 315},  {1250, 400}, {660, 180},  {410, 250},
      {420, 555},   {575, 665},   {1150, 1160},{700, 580},  {685, 595},
      {685, 610},   {770, 610},   {795, 645},  {720, 635},  {760, 650},
      {475, 960},   {95, 260},    {875, 920},  {700, 500},  {555, 815},
      {830, 485},   {1170, 65},   {830, 610},  {605, 625},  {595, 360},
      {1340, 725},  {1740, 245},
  };
  return Instance("berlin52", Metric::kEuc2D,
                  std::vector<Point>(std::begin(kPoints), std::end(kPoints)));
}

}  // namespace tspopt
