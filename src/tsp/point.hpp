// 2-D city coordinates.
//
// Coordinates are single-precision floats, matching the paper's kernels
// (Listing 1 stores `float2` in shared memory); TSPLIB files carry at most
// ~7 significant digits so nothing is lost.
#pragma once

namespace tspopt {

struct Point {
  float x = 0.0f;
  float y = 0.0f;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

}  // namespace tspopt
