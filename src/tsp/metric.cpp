#include "tsp/metric.hpp"

namespace tspopt {

std::string to_string(Metric m) {
  switch (m) {
    case Metric::kEuc2D:
      return "EUC_2D";
    case Metric::kCeil2D:
      return "CEIL_2D";
    case Metric::kMan2D:
      return "MAN_2D";
    case Metric::kMax2D:
      return "MAX_2D";
    case Metric::kAtt:
      return "ATT";
    case Metric::kGeo:
      return "GEO";
    case Metric::kExplicit:
      return "EXPLICIT";
  }
  return "UNKNOWN";
}

Metric metric_from_string(const std::string& s) {
  if (s == "EUC_2D") return Metric::kEuc2D;
  if (s == "CEIL_2D") return Metric::kCeil2D;
  if (s == "MAN_2D") return Metric::kMan2D;
  if (s == "MAX_2D") return Metric::kMax2D;
  if (s == "ATT") return Metric::kAtt;
  if (s == "GEO") return Metric::kGeo;
  if (s == "EXPLICIT") return Metric::kExplicit;
  TSPOPT_CHECK_MSG(false, "unsupported EDGE_WEIGHT_TYPE: " << s);
  return Metric::kEuc2D;  // unreachable
}

namespace {
// TSPLIB GEO conversion: input coordinate DDD.MM -> radians.
double geo_radians(float coord) {
  constexpr double kPi = 3.141592;  // value mandated by the TSPLIB spec
  auto deg = static_cast<double>(static_cast<std::int32_t>(coord));
  double min = static_cast<double>(coord) - deg;
  return kPi * (deg + 5.0 * min / 3.0) / 180.0;
}
}  // namespace

std::int32_t dist_geo(const Point& a, const Point& b) {
  constexpr double kRrr = 6378.388;  // idealized Earth radius, TSPLIB spec
  double lat_a = geo_radians(a.x), lon_a = geo_radians(a.y);
  double lat_b = geo_radians(b.x), lon_b = geo_radians(b.y);
  double q1 = std::cos(lon_a - lon_b);
  double q2 = std::cos(lat_a - lat_b);
  double q3 = std::cos(lat_a + lat_b);
  return static_cast<std::int32_t>(
      kRrr * std::acos(0.5 * ((1.0 + q1) * q2 - (1.0 - q1) * q3)) + 1.0);
}

std::int32_t dist(Metric m, const Point& a, const Point& b) {
  switch (m) {
    case Metric::kEuc2D:
      return dist_euc2d(a, b);
    case Metric::kCeil2D:
      return dist_ceil2d(a, b);
    case Metric::kMan2D:
      return dist_man2d(a, b);
    case Metric::kMax2D:
      return dist_max2d(a, b);
    case Metric::kAtt:
      return dist_att(a, b);
    case Metric::kGeo:
      return dist_geo(a, b);
    case Metric::kExplicit:
      TSPOPT_CHECK_MSG(false, "EXPLICIT metric needs the instance matrix");
  }
  return 0;  // unreachable
}

}  // namespace tspopt
