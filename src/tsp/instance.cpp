#include "tsp/instance.hpp"

#include <algorithm>

namespace tspopt {

std::pair<Point, Point> Instance::bounding_box() const {
  TSPOPT_CHECK(has_coordinates());
  Point lo = points_.front();
  Point hi = points_.front();
  for (const Point& p : points_) {
    lo.x = std::min(lo.x, p.x);
    lo.y = std::min(lo.y, p.y);
    hi.x = std::max(hi.x, p.x);
    hi.y = std::max(hi.y, p.y);
  }
  return {lo, hi};
}

}  // namespace tspopt
