// A TSP problem instance: a set of cities and an edge-weight function.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "tsp/metric.hpp"
#include "tsp/point.hpp"

namespace tspopt {

class Instance {
 public:
  Instance() = default;

  // Coordinate-based instance (EUC_2D, CEIL_2D, ATT, GEO, ...).
  Instance(std::string name, Metric metric, std::vector<Point> points)
      : name_(std::move(name)), metric_(metric), points_(std::move(points)) {
    TSPOPT_CHECK_MSG(metric_ != Metric::kExplicit,
                     "use the matrix constructor for EXPLICIT instances");
    TSPOPT_CHECK(points_.size() >= 3);
  }

  // EXPLICIT instance: full n*n matrix, row-major. Points are optional
  // display coordinates.
  Instance(std::string name, std::vector<std::int32_t> matrix, std::size_t n,
           std::vector<Point> display_points = {})
      : name_(std::move(name)),
        metric_(Metric::kExplicit),
        points_(std::move(display_points)),
        matrix_(std::move(matrix)),
        n_explicit_(n) {
    TSPOPT_CHECK(n >= 3);
    TSPOPT_CHECK(matrix_.size() == n * n);
    TSPOPT_CHECK(points_.empty() || points_.size() == n);
  }

  const std::string& name() const { return name_; }
  Metric metric() const { return metric_; }

  std::int32_t n() const {
    return static_cast<std::int32_t>(
        metric_ == Metric::kExplicit ? n_explicit_ : points_.size());
  }

  bool has_coordinates() const { return !points_.empty(); }
  std::span<const Point> points() const { return points_; }
  const Point& point(std::int32_t i) const {
    TSPOPT_DCHECK(i >= 0 && i < n());
    return points_[static_cast<std::size_t>(i)];
  }

  std::int32_t dist(std::int32_t a, std::int32_t b) const {
    TSPOPT_DCHECK(a >= 0 && a < n() && b >= 0 && b < n());
    if (metric_ == Metric::kExplicit) {
      return matrix_[static_cast<std::size_t>(a) *
                         static_cast<std::size_t>(n_explicit_) +
                     static_cast<std::size_t>(b)];
    }
    return tspopt::dist(metric_, points_[static_cast<std::size_t>(a)],
                        points_[static_cast<std::size_t>(b)]);
  }

  // True when the GPU-style engines (which read coordinates only and use
  // the paper's rounded-Euclidean kernel) apply to this instance.
  bool euclidean_like() const { return metric_ == Metric::kEuc2D; }

  // Bounding box of the coordinates (for generators/diagnostics).
  std::pair<Point, Point> bounding_box() const;

 private:
  std::string name_;
  Metric metric_ = Metric::kEuc2D;
  std::vector<Point> points_;
  std::vector<std::int32_t> matrix_;  // EXPLICIT only
  std::size_t n_explicit_ = 0;
};

}  // namespace tspopt
