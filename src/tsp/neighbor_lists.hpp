// k-nearest-neighbor lists over the city coordinates.
//
// This backs the neighborhood-pruning extension the paper lists as future
// work (§VII): restricting 2-opt candidates to each city's k nearest
// neighbors trades a little tour quality for a large reduction in checks.
// Built with a uniform spatial grid, so construction is O(n * k) expected
// for non-degenerate point sets rather than O(n^2); rows are independent,
// so the build parallelizes over the shared thread pool and stays
// negligible next to even a single pruned pass at n = 100k+.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsp/instance.hpp"

namespace tspopt {

class NeighborLists {
 public:
  // Builds lists of the k nearest cities (by the instance metric distance;
  // requires coordinates) for every city. k is clamped to n-1.
  NeighborLists(const Instance& instance, std::int32_t k);

  std::int32_t k() const { return k_; }
  std::int32_t n() const { return n_; }

  // The k neighbors of `city`, sorted by increasing distance.
  std::span<const std::int32_t> neighbors(std::int32_t city) const {
    TSPOPT_DCHECK(city >= 0 && city < n_);
    return {flat_.data() + static_cast<std::size_t>(city) *
                               static_cast<std::size_t>(k_),
            static_cast<std::size_t>(k_)};
  }

  // The candidate-edge lengths matching neighbors(city): cand_dists(c)[j]
  // is the rounded euclidean length of the edge (c, neighbors(c)[j]),
  // computed with dist_euc2d — the same float arithmetic the 2-opt
  // kernels use — so pruned kernels add it into their delta without
  // re-touching the first edge's coordinates and stay bit-identical to
  // the full-sweep engines.
  std::span<const std::int32_t> cand_dists(std::int32_t city) const {
    TSPOPT_DCHECK(city >= 0 && city < n_);
    return {cand_dist_.data() + static_cast<std::size_t>(city) *
                                    static_cast<std::size_t>(k_),
            static_cast<std::size_t>(k_)};
  }

  // Flat row-major n x k SoA export (Buffer-friendly): neighbor city ids
  // and the matching candidate-edge lengths. Row `city` occupies entries
  // [city * k, city * k + k).
  std::span<const std::int32_t> ids_flat() const { return flat_; }
  std::span<const std::int32_t> cand_dist_flat() const { return cand_dist_; }

 private:
  std::int32_t n_;
  std::int32_t k_;
  std::vector<std::int32_t> flat_;       // n * k, row per city
  std::vector<std::int32_t> cand_dist_;  // n * k, dist_euc2d per candidate
};

}  // namespace tspopt
