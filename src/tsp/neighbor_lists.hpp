// k-nearest-neighbor lists over the city coordinates.
//
// This backs the neighborhood-pruning extension the paper lists as future
// work (§VII): restricting 2-opt candidates to each city's k nearest
// neighbors trades a little tour quality for a large reduction in checks.
// Built with a uniform spatial grid, so construction is O(n * k) expected
// for non-degenerate point sets rather than O(n^2).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tsp/instance.hpp"

namespace tspopt {

class NeighborLists {
 public:
  // Builds lists of the k nearest cities (by the instance metric distance;
  // requires coordinates) for every city. k is clamped to n-1.
  NeighborLists(const Instance& instance, std::int32_t k);

  std::int32_t k() const { return k_; }
  std::int32_t n() const { return n_; }

  // The k neighbors of `city`, sorted by increasing distance.
  std::span<const std::int32_t> neighbors(std::int32_t city) const {
    TSPOPT_DCHECK(city >= 0 && city < n_);
    return {flat_.data() + static_cast<std::size_t>(city) *
                               static_cast<std::size_t>(k_),
            static_cast<std::size_t>(k_)};
  }

 private:
  std::int32_t n_;
  std::int32_t k_;
  std::vector<std::int32_t> flat_;  // n * k, row per city
};

}  // namespace tspopt
