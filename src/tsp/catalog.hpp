// Catalog of the benchmark instances used in the paper's Tables I and II.
//
// berlin52 ships with its real (public, 52-point) TSPLIB coordinates; every
// other instance is synthesized at the paper's exact size by a deterministic
// generator whose family matches the TSPLIB family's geometry (see
// DESIGN.md §2 for why this substitution preserves the relevant behaviour).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tsp/instance.hpp"

namespace tspopt {

enum class PointFamily {
  kReal,       // embedded genuine TSPLIB data
  kUniform,    // uniform random points (kro*, ch*, ts*, vm*, usa*, ...)
  kClustered,  // clustered points (pcb*, fl*, pla*, circuit-board style)
  kGrid,       // jittered grid (rat*, d*, fnl*, national drilling style)
};

struct CatalogEntry {
  std::string name;
  std::int32_t n = 0;
  PointFamily family = PointFamily::kUniform;
  // Paper Table II reference values (GTX 680 / CUDA), where legible in the
  // source text; micro-seconds. Negative means not recorded.
  double paper_kernel_us = -1.0;
  double paper_total_us = -1.0;
};

// All 27 Table II instances, ordered by size (berlin52 ... lrb744710).
const std::vector<CatalogEntry>& paper_catalog();

// The 13-instance subset used in Table I (memory accounting).
const std::vector<CatalogEntry>& table1_catalog();

// Look up a catalog entry by instance name; nullopt if absent.
std::optional<CatalogEntry> find_catalog_entry(const std::string& name);

// Materialize an entry: real data for berlin52, seeded synthetic points
// (seed derived from the name, so repeated calls agree) otherwise.
Instance make_catalog_instance(const CatalogEntry& entry);

// The genuine TSPLIB berlin52 instance (optimal tour length 7542).
Instance berlin52();
constexpr std::int64_t kBerlin52Optimum = 7542;

}  // namespace tspopt
