// Deterministic synthetic instance generators.
//
// These stand in for the TSPLIB files the paper benchmarks on (see
// DESIGN.md §2): the engines consume only (n, coordinates, metric), so
// same-size synthetic point sets exercise identical code paths and costs.
#pragma once

#include <cstdint>
#include <string>

#include "tsp/instance.hpp"

namespace tspopt {

// n points uniform in [0, extent) x [0, extent).
Instance generate_uniform(std::string name, std::int32_t n, std::uint64_t seed,
                          float extent = 10000.0f);

// n points in `clusters` Gaussian blobs with the given standard deviation,
// cluster centers uniform in the extent box. Mimics the clustered TSPLIB
// families (pcb*, fl*, pla*).
Instance generate_clustered(std::string name, std::int32_t n,
                            std::int32_t clusters, std::uint64_t seed,
                            float extent = 10000.0f, float sigma = 300.0f);

// n points on a jittered sqrt(n) x sqrt(n) grid (drilling-style instances
// such as the TSPLIB d* and rat* families).
Instance generate_grid(std::string name, std::int32_t n, std::uint64_t seed,
                       float spacing = 100.0f, float jitter = 10.0f);

// n points on a circle — the optimal tour is the convex hull order, which
// gives tests a known global optimum.
Instance generate_circle(std::string name, std::int32_t n,
                         float radius = 1000.0f);

}  // namespace tspopt
