// TSPLIB edge-weight functions.
//
// EUC_2D is the paper's metric (Listing 1: `(int)(sqrtf(dx*dx+dy*dy)+0.5f)`)
// and the one the GPU-style engines are specialized for. The remaining
// metrics make the library a complete TSPLIB consumer.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

#include "common/check.hpp"
#include "tsp/point.hpp"

namespace tspopt {

enum class Metric {
  kEuc2D,     // rounded Euclidean (paper / most TSPLIB instances)
  kCeil2D,    // ceiling of Euclidean
  kMan2D,     // rounded Manhattan
  kMax2D,     // rounded Chebyshev
  kAtt,       // pseudo-Euclidean (att48, att532)
  kGeo,       // geographical distance on the sphere
  kExplicit,  // distances given as a matrix in the file
};

std::string to_string(Metric m);
Metric metric_from_string(const std::string& s);

// The paper's distance function (Listing 1), kept in float to mirror the
// kernel arithmetic exactly.
inline std::int32_t dist_euc2d(const Point& a, const Point& b) {
  float dx = a.x - b.x;
  float dy = a.y - b.y;
  return static_cast<std::int32_t>(std::sqrt(dx * dx + dy * dy) + 0.5f);
}

inline std::int32_t dist_ceil2d(const Point& a, const Point& b) {
  float dx = a.x - b.x;
  float dy = a.y - b.y;
  return static_cast<std::int32_t>(
      std::ceil(std::sqrt(static_cast<double>(dx) * dx +
                          static_cast<double>(dy) * dy)));
}

inline std::int32_t dist_man2d(const Point& a, const Point& b) {
  double d = std::abs(static_cast<double>(a.x) - b.x) +
             std::abs(static_cast<double>(a.y) - b.y);
  return static_cast<std::int32_t>(d + 0.5);
}

inline std::int32_t dist_max2d(const Point& a, const Point& b) {
  double dx = std::abs(static_cast<double>(a.x) - b.x);
  double dy = std::abs(static_cast<double>(a.y) - b.y);
  return static_cast<std::int32_t>(std::max(dx, dy) + 0.5);
}

// ATT pseudo-Euclidean, per the TSPLIB specification.
inline std::int32_t dist_att(const Point& a, const Point& b) {
  double dx = static_cast<double>(a.x) - b.x;
  double dy = static_cast<double>(a.y) - b.y;
  double rij = std::sqrt((dx * dx + dy * dy) / 10.0);
  auto tij = static_cast<std::int32_t>(rij + 0.5);  // nint
  return (tij < rij) ? tij + 1 : tij;
}

// GEO: coordinates are DDD.MM (degrees.minutes); great-circle distance on an
// idealized sphere, per the TSPLIB specification.
std::int32_t dist_geo(const Point& a, const Point& b);

// Dispatch on metric for coordinate-based instances (not kExplicit).
std::int32_t dist(Metric m, const Point& a, const Point& b);

}  // namespace tspopt
