// SVG rendering of instances and tours.
//
// Small, dependency-free visual output so examples and debugging sessions
// can *see* tours (crossing edges are how 2-opt improvements look). The
// y-axis is flipped so the plot matches the usual mathematical
// orientation of TSPLIB coordinates.
#pragma once

#include <iosfwd>
#include <string>

#include "tsp/instance.hpp"
#include "tsp/tour.hpp"

namespace tspopt {

struct SvgStyle {
  double width = 800.0;       // pixel width; height follows the aspect ratio
  double margin = 20.0;       // pixel margin around the drawing
  double point_radius = 2.0;  // 0 disables city dots
  std::string edge_color = "#1f77b4";
  std::string point_color = "#d62728";
  double edge_width = 1.0;
  bool close_tour = true;  // draw the wrap-around edge
};

// Render the instance's cities and (optionally) a tour through them.
// `tour == nullptr` plots cities only. Requires coordinates.
void write_svg(std::ostream& out, const Instance& instance,
               const Tour* tour = nullptr, const SvgStyle& style = {});

void save_svg(const std::string& path, const Instance& instance,
              const Tour* tour = nullptr, const SvgStyle& style = {});

}  // namespace tspopt
