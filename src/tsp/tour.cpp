#include "tsp/tour.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

namespace tspopt {

Tour::Tour(std::vector<std::int32_t> order) : order_(std::move(order)) {
  TSPOPT_CHECK_MSG(order_.size() >= 3, "a tour needs at least 3 cities");
}

Tour Tour::identity(std::int32_t n) {
  TSPOPT_CHECK(n >= 3);
  std::vector<std::int32_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  return Tour(std::move(order));
}

Tour Tour::random(std::int32_t n, Pcg32& rng) {
  Tour t = identity(n);
  // Fisher–Yates with our deterministic generator.
  for (std::int32_t i = n - 1; i > 0; --i) {
    auto j = static_cast<std::int32_t>(
        rng.next_below(static_cast<std::uint32_t>(i + 1)));
    std::swap(t.order_[static_cast<std::size_t>(i)],
              t.order_[static_cast<std::size_t>(j)]);
  }
  return t;
}

bool Tour::is_valid() const {
  std::vector<bool> seen(order_.size(), false);
  for (std::int32_t c : order_) {
    if (c < 0 || c >= n()) return false;
    if (seen[static_cast<std::size_t>(c)]) return false;
    seen[static_cast<std::size_t>(c)] = true;
  }
  return true;
}

std::int64_t Tour::length(const Instance& instance) const {
  TSPOPT_CHECK(instance.n() == n());
  std::int64_t total = 0;
  for (std::size_t p = 0; p + 1 < order_.size(); ++p) {
    total += instance.dist(order_[p], order_[p + 1]);
  }
  total += instance.dist(order_.back(), order_.front());
  return total;
}

void Tour::reverse_inner(std::int32_t first, std::int32_t last) {
  std::reverse(order_.begin() + first, order_.begin() + last + 1);
}

void Tour::reverse_wrapped(std::int32_t first, std::int32_t last,
                           std::int32_t count) {
  // Reverse the cyclic segment first..last (wrapping past n-1) by swapping
  // from both ends, moving the indices modularly.
  std::int32_t a = first;
  std::int32_t b = last;
  for (std::int32_t s = 0; s < count / 2; ++s) {
    std::swap(order_[static_cast<std::size_t>(a)],
              order_[static_cast<std::size_t>(b)]);
    a = (a + 1 == n()) ? 0 : a + 1;
    b = (b == 0) ? n() - 1 : b - 1;
  }
}

void Tour::apply_two_opt(std::int32_t i, std::int32_t j) {
  TSPOPT_CHECK(0 <= i && i < j && j <= n() - 1);
  // Inner arc: positions i+1..j (length j-i). Outer arc: positions
  // (j+1)%n .. i wrapping (length n-(j-i)). Reversing either applies the
  // same 2-opt move; pick the shorter to bound the apply cost by n/2.
  std::int32_t inner_len = j - i;
  std::int32_t outer_len = n() - inner_len;
  if (inner_len <= outer_len) {
    reverse_inner(i + 1, j);
  } else {
    reverse_wrapped((j + 1) % n(), i, outer_len);
  }
}

void Tour::double_bridge(Pcg32& rng) {
  TSPOPT_CHECK_MSG(n() >= 8, "double bridge needs n >= 8");
  // Choose three distinct interior cut points 0 < p1 < p2 < p3 < n, giving
  // segments A=[0,p1), B=[p1,p2), C=[p2,p3), D=[p3,n).
  std::int32_t p1 = 1 + static_cast<std::int32_t>(
                            rng.next_below(static_cast<std::uint32_t>(n() - 3)));
  std::int32_t p2 =
      p1 + 1 + static_cast<std::int32_t>(
                   rng.next_below(static_cast<std::uint32_t>(n() - p1 - 2)));
  std::int32_t p3 =
      p2 + 1 + static_cast<std::int32_t>(
                   rng.next_below(static_cast<std::uint32_t>(n() - p2 - 1)));
  std::vector<std::int32_t> next;
  next.reserve(order_.size());
  auto append = [&](std::int32_t lo, std::int32_t hi) {
    next.insert(next.end(), order_.begin() + lo, order_.begin() + hi);
  };
  append(0, p1);    // A
  append(p2, p3);   // C
  append(p1, p2);   // B
  append(p3, n());  // D
  order_ = std::move(next);
}

void Tour::or_opt_move(std::int32_t from, std::int32_t len, std::int32_t to) {
  TSPOPT_CHECK(len >= 1 && len < n());
  TSPOPT_CHECK(from >= 0 && from + len <= n());
  TSPOPT_CHECK(to < from || to >= from + len);
  TSPOPT_CHECK(to >= -1 && to < n());
  std::vector<std::int32_t> segment(order_.begin() + from,
                                    order_.begin() + from + len);
  order_.erase(order_.begin() + from, order_.begin() + from + len);
  // After erasing, positions beyond the segment shift left by `len`.
  std::int32_t insert_after = (to >= from + len) ? to - len : to;
  order_.insert(order_.begin() + insert_after + 1, segment.begin(),
                segment.end());
}

std::vector<std::int32_t> Tour::positions() const {
  std::vector<std::int32_t> pos(order_.size());
  for (std::size_t p = 0; p < order_.size(); ++p) {
    pos[static_cast<std::size_t>(order_[p])] = static_cast<std::int32_t>(p);
  }
  return pos;
}

}  // namespace tspopt
