#include "tsp/generator.hpp"

#include <cmath>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace tspopt {

Instance generate_uniform(std::string name, std::int32_t n, std::uint64_t seed,
                          float extent) {
  TSPOPT_CHECK(n >= 3);
  Pcg32 rng(seed);
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    pts.push_back({rng.next_float(0.0f, extent), rng.next_float(0.0f, extent)});
  }
  return Instance(std::move(name), Metric::kEuc2D, std::move(pts));
}

Instance generate_clustered(std::string name, std::int32_t n,
                            std::int32_t clusters, std::uint64_t seed,
                            float extent, float sigma) {
  TSPOPT_CHECK(n >= 3);
  TSPOPT_CHECK(clusters >= 1);
  Pcg32 rng(seed);
  std::vector<Point> centers;
  centers.reserve(static_cast<std::size_t>(clusters));
  for (std::int32_t c = 0; c < clusters; ++c) {
    centers.push_back(
        {rng.next_float(0.0f, extent), rng.next_float(0.0f, extent)});
  }
  // Box–Muller for the Gaussian offsets; deterministic given the seed.
  auto gaussian = [&rng]() {
    double u1 = rng.next_double();
    double u2 = rng.next_double();
    if (u1 < 1e-12) u1 = 1e-12;
    return std::sqrt(-2.0 * std::log(u1)) *
           std::cos(2.0 * 3.14159265358979323846 * u2);
  };
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    const Point& c = centers[rng.next_below(static_cast<std::uint32_t>(clusters))];
    pts.push_back({c.x + static_cast<float>(gaussian()) * sigma,
                   c.y + static_cast<float>(gaussian()) * sigma});
  }
  return Instance(std::move(name), Metric::kEuc2D, std::move(pts));
}

Instance generate_grid(std::string name, std::int32_t n, std::uint64_t seed,
                       float spacing, float jitter) {
  TSPOPT_CHECK(n >= 3);
  Pcg32 rng(seed);
  auto side = static_cast<std::int32_t>(
      std::ceil(std::sqrt(static_cast<double>(n))));
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    auto row = static_cast<float>(i / side);
    auto col = static_cast<float>(i % side);
    pts.push_back({col * spacing + rng.next_float(-jitter, jitter),
                   row * spacing + rng.next_float(-jitter, jitter)});
  }
  return Instance(std::move(name), Metric::kEuc2D, std::move(pts));
}

Instance generate_circle(std::string name, std::int32_t n, float radius) {
  TSPOPT_CHECK(n >= 3);
  std::vector<Point> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    double theta =
        2.0 * 3.14159265358979323846 * static_cast<double>(i) / n;
    pts.push_back({radius * static_cast<float>(std::cos(theta)) + radius,
                   radius * static_cast<float>(std::sin(theta)) + radius});
  }
  return Instance(std::move(name), Metric::kEuc2D, std::move(pts));
}

}  // namespace tspopt
