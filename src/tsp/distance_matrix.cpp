#include "tsp/distance_matrix.hpp"

namespace tspopt {

DistanceMatrix::DistanceMatrix(const Instance& instance) : n_(instance.n()) {
  TSPOPT_CHECK_MSG(n_ <= 20000,
                   "refusing to allocate a >1.6 GB LUT; use coordinates");
  lut_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_));
  for (std::int32_t a = 0; a < n_; ++a) {
    auto row = static_cast<std::size_t>(a) * static_cast<std::size_t>(n_);
    lut_[row + static_cast<std::size_t>(a)] = 0;
    for (std::int32_t b = a + 1; b < n_; ++b) {
      std::int32_t d = instance.dist(a, b);
      lut_[row + static_cast<std::size_t>(b)] = d;
      lut_[static_cast<std::size_t>(b) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(a)] = d;
    }
  }
}

}  // namespace tspopt
