// TSPLIB tour-file (.tour / TYPE TOUR) reader and writer.
//
// TSPLIB distributes optimal tours in this format (NAME/TYPE/DIMENSION
// header, TOUR_SECTION with 1-based city ids, -1 terminator); supporting
// it lets results interchange with standard TSP tooling and lets tests
// persist and reload solver output.
#pragma once

#include <iosfwd>
#include <string>

#include "tsp/tour.hpp"

namespace tspopt {

// Parse a TSPLIB tour file. `expected_n >= 0` additionally validates the
// dimension. Throws CheckError on malformed input.
Tour parse_tsplib_tour(std::istream& in, std::int32_t expected_n = -1);
Tour load_tsplib_tour(const std::string& path, std::int32_t expected_n = -1);

// Write `tour` in TSPLIB TOUR format. `name` goes into the NAME field;
// `length_comment >= 0` is recorded as a COMMENT line.
void write_tsplib_tour(std::ostream& out, const Tour& tour,
                       const std::string& name,
                       std::int64_t length_comment = -1);
void save_tsplib_tour(const std::string& path, const Tour& tour,
                      const std::string& name,
                      std::int64_t length_comment = -1);

}  // namespace tspopt
