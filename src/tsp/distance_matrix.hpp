// Precomputed O(n^2) distance look-up table.
//
// The paper's Table I contrasts this LUT approach (fast per-query, O(n^2)
// space) with recomputing distances from O(n) coordinates — and argues GPUs
// must do the latter. We build the LUT anyway: it is the memory-accounting
// subject of Table I and a useful CPU-side acceleration for small n.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "tsp/instance.hpp"

namespace tspopt {

class DistanceMatrix {
 public:
  explicit DistanceMatrix(const Instance& instance);

  std::int32_t n() const { return n_; }

  std::int32_t dist(std::int32_t a, std::int32_t b) const {
    TSPOPT_DCHECK(a >= 0 && a < n_ && b >= 0 && b < n_);
    return lut_[static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) +
                static_cast<std::size_t>(b)];
  }

  // Bytes held by the LUT — the "Memory needed for LUT" column of Table I.
  std::size_t memory_bytes() const { return lut_.size() * sizeof(std::int32_t); }

  // Bytes needed to store the raw coordinates instead — Table I's other
  // column: n * sizeof(float2).
  static std::size_t coordinate_bytes(std::int64_t n) {
    return static_cast<std::size_t>(n) * 2 * sizeof(float);
  }
  static std::size_t lut_bytes(std::int64_t n) {
    return static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
           sizeof(std::int32_t);
  }

 private:
  std::int32_t n_;
  std::vector<std::int32_t> lut_;
};

}  // namespace tspopt
