#include "tsp/tour_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace tspopt {

namespace {
std::string trim(const std::string& s) {
  auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  auto begin = std::find_if_not(s.begin(), s.end(), is_space);
  auto end = std::find_if_not(s.rbegin(), s.rend(), is_space).base();
  return (begin < end) ? std::string(begin, end) : std::string();
}
}  // namespace

Tour parse_tsplib_tour(std::istream& in, std::int32_t expected_n) {
  std::int64_t dimension = -1;
  std::string line;
  bool in_section = false;
  std::vector<std::int32_t> order;

  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty()) continue;
    if (!in_section) {
      auto colon = line.find(':');
      std::string key = trim(colon == std::string::npos
                                 ? line
                                 : line.substr(0, colon));
      std::string value =
          colon == std::string::npos ? "" : trim(line.substr(colon + 1));
      if (key == "DIMENSION") {
        dimension = std::stoll(value);
      } else if (key == "TYPE") {
        TSPOPT_CHECK_MSG(value == "TOUR", "expected TYPE TOUR, got " << value);
      } else if (key == "TOUR_SECTION") {
        in_section = true;
      } else if (key == "EOF") {
        break;
      }
      // NAME/COMMENT and unknown keywords are ignored.
      continue;
    }
    // Inside TOUR_SECTION: whitespace-separated 1-based ids, -1 ends.
    std::istringstream nums(line);
    std::int64_t v = 0;
    while (nums >> v) {
      if (v == -1) {
        in_section = false;
        break;
      }
      TSPOPT_CHECK_MSG(v >= 1, "tour ids are 1-based, got " << v);
      order.push_back(static_cast<std::int32_t>(v - 1));
    }
  }

  TSPOPT_CHECK_MSG(!order.empty(), "tour file has no TOUR_SECTION entries");
  if (dimension >= 0) {
    TSPOPT_CHECK_MSG(static_cast<std::int64_t>(order.size()) == dimension,
                     "TOUR_SECTION has " << order.size()
                                         << " cities, DIMENSION says "
                                         << dimension);
  }
  if (expected_n >= 0) {
    TSPOPT_CHECK_MSG(static_cast<std::int32_t>(order.size()) == expected_n,
                     "tour has " << order.size() << " cities, expected "
                                 << expected_n);
  }
  Tour tour(std::move(order));
  TSPOPT_CHECK_MSG(tour.is_valid(), "tour file is not a permutation");
  return tour;
}

Tour load_tsplib_tour(const std::string& path, std::int32_t expected_n) {
  std::ifstream in(path);
  TSPOPT_CHECK_MSG(in.good(), "cannot open tour file: " << path);
  return parse_tsplib_tour(in, expected_n);
}

void write_tsplib_tour(std::ostream& out, const Tour& tour,
                       const std::string& name, std::int64_t length_comment) {
  TSPOPT_CHECK_MSG(tour.is_valid(), "refusing to write an invalid tour");
  out << "NAME : " << name << "\n"
      << "TYPE : TOUR\n";
  if (length_comment >= 0) {
    out << "COMMENT : length " << length_comment << "\n";
  }
  out << "DIMENSION : " << tour.n() << "\n"
      << "TOUR_SECTION\n";
  for (std::int32_t p = 0; p < tour.n(); ++p) {
    out << (tour.city_at(p) + 1) << "\n";
  }
  out << "-1\nEOF\n";
}

void save_tsplib_tour(const std::string& path, const Tour& tour,
                      const std::string& name, std::int64_t length_comment) {
  std::ofstream out(path);
  TSPOPT_CHECK_MSG(out.good(), "cannot write tour file: " << path);
  write_tsplib_tour(out, tour, name, length_comment);
}

}  // namespace tspopt
