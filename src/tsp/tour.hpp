// A closed TSP tour: a permutation of the city indices 0..n-1.
//
// Positions are indices into the permutation; the tour implicitly closes
// with the edge (order[n-1], order[0]). The 2-opt move (i, j) with
// 0 <= i < j <= n-1 removes edges (order[i], order[i+1]) and
// (order[j], order[(j+1) % n]) and reconnects by reversing a segment.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "tsp/instance.hpp"

namespace tspopt {

class Tour {
 public:
  explicit Tour(std::vector<std::int32_t> order);

  // The identity tour 0, 1, ..., n-1.
  static Tour identity(std::int32_t n);
  // A uniformly random tour (Fisher–Yates).
  static Tour random(std::int32_t n, Pcg32& rng);

  std::int32_t n() const { return static_cast<std::int32_t>(order_.size()); }
  std::span<const std::int32_t> order() const { return order_; }
  std::int32_t city_at(std::int32_t pos) const {
    TSPOPT_DCHECK(pos >= 0 && pos < n());
    return order_[static_cast<std::size_t>(pos)];
  }

  // True iff the order is a permutation of 0..n-1.
  bool is_valid() const;

  // Total closed-tour length under the instance's metric.
  std::int64_t length(const Instance& instance) const;

  // Apply the 2-opt move (i, j): reverse whichever of the two arcs between
  // the removed edges is shorter (both reconnections yield the same tour up
  // to orientation, so the symmetric length is identical either way).
  // Requires 0 <= i < j <= n-1.
  void apply_two_opt(std::int32_t i, std::int32_t j);

  // The classic ILS double-bridge perturbation: cut the tour into four
  // non-empty segments A B C D at random points and reconnect as A C B D.
  // Requires n >= 8 so all segments can be non-empty and non-trivial.
  void double_bridge(Pcg32& rng);

  // Or-opt move: relocate the segment of `len` cities starting at position
  // `from` so that it follows position `to` (positions in the current
  // order; `to` must lie outside the moved segment). Used by the 2.5-opt
  // extension.
  void or_opt_move(std::int32_t from, std::int32_t len, std::int32_t to);

  // positions()[city] == position of `city` in the order.
  std::vector<std::int32_t> positions() const;

  friend bool operator==(const Tour& a, const Tour& b) {
    return a.order_ == b.order_;
  }

 private:
  void reverse_inner(std::int32_t first, std::int32_t last);
  void reverse_wrapped(std::int32_t first, std::int32_t last,
                       std::int32_t count);

  std::vector<std::int32_t> order_;
};

}  // namespace tspopt
