#include "tsp/neighbor_lists.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/check.hpp"
#include "obs/trace.hpp"
#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"
#include "tsp/metric.hpp"

namespace tspopt {

namespace {

// Uniform bucket grid over the bounding box.
struct Grid {
  std::int32_t cells_x = 1;
  std::int32_t cells_y = 1;
  float cell = 1.0f;
  Point lo;
  std::vector<std::vector<std::int32_t>> buckets;

  std::int32_t clamp_x(std::int32_t cx) const {
    return std::clamp(cx, 0, cells_x - 1);
  }
  std::int32_t clamp_y(std::int32_t cy) const {
    return std::clamp(cy, 0, cells_y - 1);
  }
  std::int32_t cell_of_x(float x) const {
    return clamp_x(static_cast<std::int32_t>((x - lo.x) / cell));
  }
  std::int32_t cell_of_y(float y) const {
    return clamp_y(static_cast<std::int32_t>((y - lo.y) / cell));
  }
  const std::vector<std::int32_t>& bucket(std::int32_t cx,
                                          std::int32_t cy) const {
    return buckets[static_cast<std::size_t>(cy) *
                       static_cast<std::size_t>(cells_x) +
                   static_cast<std::size_t>(cx)];
  }
  std::vector<std::int32_t>& bucket(std::int32_t cx, std::int32_t cy) {
    return buckets[static_cast<std::size_t>(cy) *
                       static_cast<std::size_t>(cells_x) +
                   static_cast<std::size_t>(cx)];
  }
};

Grid build_grid(const Instance& instance) {
  Grid g;
  auto [lo, hi] = instance.bounding_box();
  TSPOPT_CHECK_MSG(std::isfinite(lo.x) && std::isfinite(lo.y) &&
                       std::isfinite(hi.x) && std::isfinite(hi.y),
                   "NeighborLists requires finite coordinates");
  g.lo = lo;
  // Degenerate extents (all-identical points, collinear sets, zero-area
  // bounding boxes) clamp to a 1x1 span: every point then lands in a small
  // grid and the ring search degenerates to a near-exhaustive scan, which
  // is still correct and still terminates.
  float w = std::max(hi.x - lo.x, 1.0f);
  float h = std::max(hi.y - lo.y, 1.0f);
  // Aim for ~1-2 points per cell.
  auto target = static_cast<float>(
      std::sqrt(static_cast<double>(instance.n())));
  g.cell = std::max(w, h) / std::max(1.0f, target);
  if (!(g.cell > 0.0f) || !std::isfinite(g.cell)) g.cell = 1.0f;
  g.cells_x = std::max(1, static_cast<std::int32_t>(w / g.cell) + 1);
  g.cells_y = std::max(1, static_cast<std::int32_t>(h / g.cell) + 1);
  g.buckets.resize(static_cast<std::size_t>(g.cells_x) *
                   static_cast<std::size_t>(g.cells_y));
  for (std::int32_t i = 0; i < instance.n(); ++i) {
    const Point& p = instance.point(i);
    g.bucket(g.cell_of_x(p.x), g.cell_of_y(p.y)).push_back(i);
  }
  return g;
}

// Collects the k nearest neighbors of `city` by expanding grid rings.
// `candidates` is caller-owned scratch so parallel workers reuse capacity.
void build_row(const Instance& instance, const Grid& grid, std::int32_t city,
               std::int32_t k,
               std::vector<std::pair<std::int64_t, std::int32_t>>& candidates) {
  const Point& p = instance.point(city);
  std::int32_t cx = grid.cell_of_x(p.x);
  std::int32_t cy = grid.cell_of_y(p.y);
  candidates.clear();
  // Expand the search ring until we have enough candidates AND the ring
  // distance already exceeds the k-th best, guaranteeing correctness. The
  // ring index is bounded: once it spans the clamped grid the
  // covers_whole_grid break fires, so the loop terminates for any input
  // the grid accepted (the fuzz test drives the degenerate shapes).
  const std::int32_t max_ring = grid.cells_x + grid.cells_y;
  for (std::int32_t ring = 0;; ++ring) {
    TSPOPT_CHECK_MSG(ring <= max_ring,
                     "NeighborLists ring expansion failed to terminate");
    std::int32_t x0 = grid.clamp_x(cx - ring), x1 = grid.clamp_x(cx + ring);
    std::int32_t y0 = grid.clamp_y(cy - ring), y1 = grid.clamp_y(cy + ring);
    for (std::int32_t gy = y0; gy <= y1; ++gy) {
      for (std::int32_t gx = x0; gx <= x1; ++gx) {
        bool on_ring = (gx == cx - ring || gx == cx + ring ||
                        gy == cy - ring || gy == cy + ring);
        if (ring > 0 && !on_ring) continue;  // interior already visited
        for (std::int32_t other : grid.bucket(gx, gy)) {
          if (other == city) continue;
          candidates.emplace_back(instance.dist(city, other), other);
        }
      }
    }
    bool covers_whole_grid =
        x0 == 0 && y0 == 0 && x1 == grid.cells_x - 1 && y1 == grid.cells_y - 1;
    if (static_cast<std::int32_t>(candidates.size()) >= k) {
      // Points further than `ring * cell` from the query cannot beat the
      // current k-th candidate once the ring radius passes it.
      std::nth_element(candidates.begin(),
                       candidates.begin() + (k - 1), candidates.end());
      double kth = static_cast<double>(candidates[static_cast<std::size_t>(k - 1)].first);
      double ring_guarantee = static_cast<double>(ring) * grid.cell;
      if (ring_guarantee >= kth || covers_whole_grid) break;
    } else if (covers_whole_grid) {
      break;
    }
  }
  TSPOPT_CHECK(static_cast<std::int32_t>(candidates.size()) >= k);
  std::partial_sort(candidates.begin(), candidates.begin() + k,
                    candidates.end());
}

}  // namespace

NeighborLists::NeighborLists(const Instance& instance, std::int32_t k)
    : n_(instance.n()),
      k_(std::clamp(k, 1, std::max(1, instance.n() - 1))) {
  TSPOPT_CHECK(k >= 1);
  TSPOPT_CHECK_MSG(instance.has_coordinates(),
                   "NeighborLists requires coordinates");
  // Pool workers inherit this span's name via ThreadPool::submit's
  // snapshot, so profiler samples in build_row attribute here too.
  obs::Span span = obs::Tracer::global().span("tsp.neighbor_lists", "tsp");
  const Grid grid = build_grid(instance);
  flat_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(k_));
  cand_dist_.resize(static_cast<std::size_t>(n_) *
                    static_cast<std::size_t>(k_));

  // Rows are independent and the ring-expansion cost varies with local
  // density, so workers pull dynamic city chunks; each keeps its own
  // candidate scratch. Per-row output is deterministic regardless of the
  // worker that computed it (bucket contents and visit order are fixed by
  // the serial grid build).
  ThreadPool& pool = ThreadPool::shared();
  std::vector<std::vector<std::pair<std::int64_t, std::int32_t>>> scratch(
      pool.size());
  parallel_for_dynamic(
      pool, 0, n_, 512,
      [&](std::int64_t lo, std::int64_t hi, std::size_t worker) {
        auto& candidates = scratch[worker];
        for (std::int64_t city = lo; city < hi; ++city) {
          build_row(instance, grid, static_cast<std::int32_t>(city), k_,
                    candidates);
          const Point& a = instance.point(static_cast<std::int32_t>(city));
          std::size_t base = static_cast<std::size_t>(city) *
                             static_cast<std::size_t>(k_);
          for (std::int32_t j = 0; j < k_; ++j) {
            std::int32_t id = candidates[static_cast<std::size_t>(j)].second;
            flat_[base + static_cast<std::size_t>(j)] = id;
            // Recomputed with dist_euc2d (not instance.dist) so the export
            // matches the coordinate engines' arithmetic bit-for-bit.
            cand_dist_[base + static_cast<std::size_t>(j)] =
                dist_euc2d(a, instance.point(id));
          }
        }
      });
}

}  // namespace tspopt
