#include "tsp/tsplib.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/check.hpp"

namespace tspopt {
namespace {

std::string trim(const std::string& s) {
  auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  auto begin = std::find_if_not(s.begin(), s.end(), is_space);
  auto end = std::find_if_not(s.rbegin(), s.rend(), is_space).base();
  return (begin < end) ? std::string(begin, end) : std::string();
}

// Split "KEYWORD : value" / "KEYWORD: value" / bare "SECTION_NAME".
bool split_keyword(const std::string& line, std::string& key,
                   std::string& value) {
  auto colon = line.find(':');
  if (colon == std::string::npos) {
    key = trim(line);
    value.clear();
    return !key.empty();
  }
  key = trim(line.substr(0, colon));
  value = trim(line.substr(colon + 1));
  return !key.empty();
}

struct Header {
  std::string name = "unnamed";
  std::string type = "TSP";
  std::string edge_weight_type;
  std::string edge_weight_format;
  std::int64_t dimension = 0;
};

// Read `count` whitespace-separated integers that may span multiple lines.
std::vector<std::int32_t> read_ints(std::istream& in, std::size_t count) {
  std::vector<std::int32_t> out;
  out.reserve(count);
  std::int64_t v = 0;
  while (out.size() < count && (in >> v)) {
    out.push_back(static_cast<std::int32_t>(v));
  }
  TSPOPT_CHECK_MSG(out.size() == count,
                   "EDGE_WEIGHT_SECTION truncated: expected "
                       << count << " values, got " << out.size());
  return out;
}

std::vector<std::int32_t> expand_matrix(const std::string& format,
                                        const std::vector<std::int32_t>& raw,
                                        std::size_t n) {
  std::vector<std::int32_t> m(n * n, 0);
  auto at = [&](std::size_t r, std::size_t c) -> std::int32_t& {
    return m[r * n + c];
  };
  std::size_t idx = 0;
  if (format == "FULL_MATRIX") {
    TSPOPT_CHECK(raw.size() == n * n);
    m = raw;
  } else if (format == "UPPER_ROW") {
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r + 1; c < n; ++c) at(r, c) = at(c, r) = raw[idx++];
  } else if (format == "LOWER_ROW") {
    for (std::size_t r = 1; r < n; ++r)
      for (std::size_t c = 0; c < r; ++c) at(r, c) = at(c, r) = raw[idx++];
  } else if (format == "UPPER_DIAG_ROW") {
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r; c < n; ++c) at(r, c) = at(c, r) = raw[idx++];
  } else if (format == "LOWER_DIAG_ROW") {
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c <= r; ++c) at(r, c) = at(c, r) = raw[idx++];
  } else {
    TSPOPT_CHECK_MSG(false, "unsupported EDGE_WEIGHT_FORMAT: " << format);
  }
  return m;
}

std::size_t triangle_count(const std::string& format, std::size_t n) {
  if (format == "FULL_MATRIX") return n * n;
  if (format == "UPPER_ROW" || format == "LOWER_ROW") return n * (n - 1) / 2;
  if (format == "UPPER_DIAG_ROW" || format == "LOWER_DIAG_ROW")
    return n * (n + 1) / 2;
  TSPOPT_CHECK_MSG(false, "unsupported EDGE_WEIGHT_FORMAT: " << format);
  return 0;
}

}  // namespace

Instance parse_tsplib(std::istream& in) {
  Header header;
  std::vector<Point> points;
  std::vector<Point> display_points;
  std::vector<std::int32_t> matrix;
  bool saw_coords = false;
  bool saw_matrix = false;

  std::string line;
  while (std::getline(in, line)) {
    line = trim(line);
    if (line.empty()) continue;
    std::string key, value;
    if (!split_keyword(line, key, value)) continue;

    if (key == "NAME") {
      header.name = value;
    } else if (key == "TYPE") {
      header.type = value;
      TSPOPT_CHECK_MSG(value == "TSP" || value == "tsp",
                       "unsupported TYPE: " << value
                                            << " (only symmetric TSP)");
    } else if (key == "COMMENT" || key == "NODE_COORD_TYPE" ||
               key == "DISPLAY_DATA_TYPE") {
      // informational only
    } else if (key == "DIMENSION") {
      header.dimension = std::stoll(value);
      TSPOPT_CHECK_MSG(header.dimension >= 3,
                       "DIMENSION must be >= 3, got " << header.dimension);
    } else if (key == "EDGE_WEIGHT_TYPE") {
      header.edge_weight_type = value;
    } else if (key == "EDGE_WEIGHT_FORMAT") {
      header.edge_weight_format = value;
    } else if (key == "NODE_COORD_SECTION" || key == "DISPLAY_DATA_SECTION") {
      TSPOPT_CHECK_MSG(header.dimension > 0,
                       "DIMENSION must precede " << key);
      auto n = static_cast<std::size_t>(header.dimension);
      std::vector<Point> pts(n);
      for (std::size_t i = 0; i < n; ++i) {
        std::int64_t index = 0;
        double x = 0, y = 0;
        TSPOPT_CHECK_MSG(in >> index >> x >> y,
                         key << " truncated at entry " << i);
        TSPOPT_CHECK_MSG(index >= 1 && index <= header.dimension,
                         "node index " << index << " out of range");
        pts[static_cast<std::size_t>(index - 1)] = {static_cast<float>(x),
                                                    static_cast<float>(y)};
      }
      if (key == "NODE_COORD_SECTION") {
        points = std::move(pts);
        saw_coords = true;
      } else {
        display_points = std::move(pts);
      }
    } else if (key == "EDGE_WEIGHT_SECTION") {
      TSPOPT_CHECK_MSG(header.dimension > 0,
                       "DIMENSION must precede EDGE_WEIGHT_SECTION");
      TSPOPT_CHECK_MSG(!header.edge_weight_format.empty(),
                       "EDGE_WEIGHT_FORMAT must precede EDGE_WEIGHT_SECTION");
      auto n = static_cast<std::size_t>(header.dimension);
      auto raw = read_ints(in, triangle_count(header.edge_weight_format, n));
      matrix = expand_matrix(header.edge_weight_format, raw, n);
      saw_matrix = true;
    } else if (key == "EOF") {
      break;
    } else if (key == "FIXED_EDGES_SECTION" || key == "TOUR_SECTION") {
      TSPOPT_CHECK_MSG(false, "unsupported section: " << key);
    }
    // Unknown keywords with values are ignored (TSPLIB extensions).
  }

  if (saw_matrix) {
    TSPOPT_CHECK_MSG(header.edge_weight_type == "EXPLICIT",
                     "EDGE_WEIGHT_SECTION requires EDGE_WEIGHT_TYPE EXPLICIT");
    auto n = static_cast<std::size_t>(header.dimension);
    return Instance(header.name, std::move(matrix), n,
                    std::move(display_points));
  }
  TSPOPT_CHECK_MSG(saw_coords, "no NODE_COORD_SECTION or EDGE_WEIGHT_SECTION");
  TSPOPT_CHECK_MSG(!header.edge_weight_type.empty(),
                   "missing EDGE_WEIGHT_TYPE");
  TSPOPT_CHECK_MSG(
      points.size() == static_cast<std::size_t>(header.dimension),
      "coordinate count does not match DIMENSION");
  return Instance(header.name, metric_from_string(header.edge_weight_type),
                  std::move(points));
}

Instance load_tsplib(const std::string& path) {
  std::ifstream in(path);
  TSPOPT_CHECK_MSG(in.good(), "cannot open TSPLIB file: " << path);
  return parse_tsplib(in);
}

void write_tsplib(std::ostream& out, const Instance& instance) {
  TSPOPT_CHECK_MSG(instance.metric() != Metric::kExplicit,
                   "writer supports coordinate-based instances only");
  out << "NAME : " << instance.name() << "\n"
      << "TYPE : TSP\n"
      << "DIMENSION : " << instance.n() << "\n"
      << "EDGE_WEIGHT_TYPE : " << to_string(instance.metric()) << "\n"
      << "NODE_COORD_SECTION\n";
  // max_digits10 guarantees the parsed floats are bit-identical to the
  // written ones (rounded metrics are sensitive to the last ulp).
  out << std::setprecision(std::numeric_limits<float>::max_digits10);
  for (std::int32_t i = 0; i < instance.n(); ++i) {
    const Point& p = instance.point(i);
    out << (i + 1) << ' ' << p.x << ' ' << p.y << "\n";
  }
  out << "EOF\n";
}

void save_tsplib(const std::string& path, const Instance& instance) {
  std::ofstream out(path);
  TSPOPT_CHECK_MSG(out.good(), "cannot write TSPLIB file: " << path);
  write_tsplib(out, instance);
}

}  // namespace tspopt
