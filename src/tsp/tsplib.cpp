#include "tsp/tsplib.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace tspopt {
namespace {

// Malformed real-world files are the rule, not the exception: every parse
// failure must surface as a CheckError naming the offending line, never as
// UB, a std::sto* exception, or a multi-gigabyte allocation. The parser
// therefore reads strictly line-by-line through LineSource (which counts
// lines) and converts every number with bounds-checked helpers.

// DIMENSION guard: the biggest TSPLIB instance the paper touches is
// lrb744710; 10M leaves ample headroom while keeping a corrupted header
// from driving an absurd allocation.
constexpr std::int64_t kMaxDimension = 10'000'000;

std::string trim(const std::string& s) {
  auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  auto begin = std::find_if_not(s.begin(), s.end(), is_space);
  auto end = std::find_if_not(s.rbegin(), s.rend(), is_space).base();
  return (begin < end) ? std::string(begin, end) : std::string();
}

// Split "KEYWORD : value" / "KEYWORD: value" / bare "SECTION_NAME".
bool split_keyword(const std::string& line, std::string& key,
                   std::string& value) {
  auto colon = line.find(':');
  if (colon == std::string::npos) {
    key = trim(line);
    value.clear();
    return !key.empty();
  }
  key = trim(line.substr(0, colon));
  value = trim(line.substr(colon + 1));
  return !key.empty();
}

// Line-counting reader: every token the parser consumes is attributable
// to a 1-based source line for error reporting.
class LineSource {
 public:
  explicit LineSource(std::istream& in) : in_(in) {}

  bool next(std::string& line) {
    if (!std::getline(in_, line)) return false;
    ++line_no_;
    return true;
  }

  std::size_t line_no() const { return line_no_; }

 private:
  std::istream& in_;
  std::size_t line_no_ = 0;
};

// Whitespace-separated tokens drawn across lines (sections like
// EDGE_WEIGHT_SECTION wrap their numbers arbitrarily).
class TokenStream {
 public:
  explicit TokenStream(LineSource& source) : source_(source) {}

  bool next(std::string& token) {
    for (;;) {
      if (line_ >> token) return true;
      std::string raw;
      if (!source_.next(raw)) return false;
      line_.clear();
      line_.str(raw);
    }
  }

  std::size_t line_no() const { return source_.line_no(); }

 private:
  LineSource& source_;
  std::istringstream line_;
};

// std::from_chars rejects a leading '+', which stream extraction (the old
// parser) accepted; tolerate it for compatibility.
const char* skip_plus(const std::string& token) {
  return token.size() > 1 && token[0] == '+' ? token.data() + 1
                                             : token.data();
}

std::int64_t parse_int(const std::string& token, std::size_t line,
                       const char* what) {
  std::int64_t v = 0;
  const char* first = skip_plus(token);
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, v);
  TSPOPT_CHECK_MSG(ec == std::errc{} && ptr == last,
                   "line " << line << ": " << what << " is not an integer: '"
                           << token << "'");
  return v;
}

double parse_double(const std::string& token, std::size_t line,
                    const char* what) {
  double v = 0.0;
  const char* first = skip_plus(token);
  const char* last = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(first, last, v);
  TSPOPT_CHECK_MSG(ec == std::errc{} && ptr == last,
                   "line " << line << ": " << what << " is not a number: '"
                           << token << "'");
  TSPOPT_CHECK_MSG(std::isfinite(v),
                   "line " << line << ": " << what << " is not finite: '"
                           << token << "'");
  return v;
}

struct Header {
  std::string name = "unnamed";
  std::string type = "TSP";
  std::string edge_weight_type;
  std::string edge_weight_format;
  std::int64_t dimension = 0;
};

// Read `count` whitespace-separated edge weights that may span lines.
std::vector<std::int32_t> read_ints(TokenStream& tokens, std::size_t count) {
  std::vector<std::int32_t> out;
  out.reserve(count);
  std::string token;
  while (out.size() < count && tokens.next(token)) {
    std::int64_t v = parse_int(token, tokens.line_no(), "edge weight");
    TSPOPT_CHECK_MSG(v >= std::numeric_limits<std::int32_t>::min() &&
                         v <= std::numeric_limits<std::int32_t>::max(),
                     "line " << tokens.line_no() << ": edge weight " << v
                             << " out of 32-bit range");
    out.push_back(static_cast<std::int32_t>(v));
  }
  TSPOPT_CHECK_MSG(out.size() == count,
                   "line " << tokens.line_no()
                           << ": EDGE_WEIGHT_SECTION truncated: expected "
                           << count << " values, got " << out.size());
  return out;
}

std::vector<std::int32_t> expand_matrix(const std::string& format,
                                        const std::vector<std::int32_t>& raw,
                                        std::size_t n) {
  std::vector<std::int32_t> m(n * n, 0);
  auto at = [&](std::size_t r, std::size_t c) -> std::int32_t& {
    return m[r * n + c];
  };
  std::size_t idx = 0;
  if (format == "FULL_MATRIX") {
    TSPOPT_CHECK(raw.size() == n * n);
    m = raw;
  } else if (format == "UPPER_ROW") {
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r + 1; c < n; ++c) at(r, c) = at(c, r) = raw[idx++];
  } else if (format == "LOWER_ROW") {
    for (std::size_t r = 1; r < n; ++r)
      for (std::size_t c = 0; c < r; ++c) at(r, c) = at(c, r) = raw[idx++];
  } else if (format == "UPPER_DIAG_ROW") {
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = r; c < n; ++c) at(r, c) = at(c, r) = raw[idx++];
  } else if (format == "LOWER_DIAG_ROW") {
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c <= r; ++c) at(r, c) = at(c, r) = raw[idx++];
  } else {
    TSPOPT_CHECK_MSG(false, "unsupported EDGE_WEIGHT_FORMAT: " << format);
  }
  return m;
}

std::size_t triangle_count(const std::string& format, std::size_t n,
                           std::size_t line) {
  if (format == "FULL_MATRIX") return n * n;
  if (format == "UPPER_ROW" || format == "LOWER_ROW") return n * (n - 1) / 2;
  if (format == "UPPER_DIAG_ROW" || format == "LOWER_DIAG_ROW")
    return n * (n + 1) / 2;
  TSPOPT_CHECK_MSG(false, "line " << line << ": unsupported "
                                  << "EDGE_WEIGHT_FORMAT: " << format);
  return 0;
}

}  // namespace

Instance parse_tsplib(std::istream& in) {
  Header header;
  std::vector<Point> points;
  std::vector<Point> display_points;
  std::vector<std::int32_t> matrix;
  bool saw_coords = false;
  bool saw_matrix = false;

  LineSource source(in);
  std::string line;
  while (source.next(line)) {
    line = trim(line);
    if (line.empty()) continue;
    std::string key, value;
    if (!split_keyword(line, key, value)) continue;
    const std::size_t at_line = source.line_no();

    if (key == "NAME") {
      header.name = value;
    } else if (key == "TYPE") {
      header.type = value;
      TSPOPT_CHECK_MSG(value == "TSP" || value == "tsp",
                       "line " << at_line << ": unsupported TYPE: " << value
                               << " (only symmetric TSP)");
    } else if (key == "COMMENT" || key == "NODE_COORD_TYPE" ||
               key == "DISPLAY_DATA_TYPE") {
      // informational only
    } else if (key == "DIMENSION") {
      header.dimension = parse_int(value, at_line, "DIMENSION");
      TSPOPT_CHECK_MSG(header.dimension >= 3,
                       "line " << at_line << ": DIMENSION must be >= 3, got "
                               << header.dimension);
      TSPOPT_CHECK_MSG(header.dimension <= kMaxDimension,
                       "line " << at_line << ": DIMENSION "
                               << header.dimension << " exceeds the "
                               << kMaxDimension << " limit");
    } else if (key == "EDGE_WEIGHT_TYPE") {
      header.edge_weight_type = value;
    } else if (key == "EDGE_WEIGHT_FORMAT") {
      header.edge_weight_format = value;
    } else if (key == "NODE_COORD_SECTION" || key == "DISPLAY_DATA_SECTION") {
      TSPOPT_CHECK_MSG(header.dimension > 0,
                       "line " << at_line << ": DIMENSION must precede "
                               << key);
      auto n = static_cast<std::size_t>(header.dimension);
      std::vector<Point> pts(n);
      std::vector<char> seen(n, 0);
      TokenStream tokens(source);
      std::string tok_index, tok_x, tok_y;
      for (std::size_t i = 0; i < n; ++i) {
        TSPOPT_CHECK_MSG(tokens.next(tok_index) && tokens.next(tok_x) &&
                             tokens.next(tok_y),
                         "line " << tokens.line_no() << ": " << key
                                 << " truncated at entry " << i << " of "
                                 << n);
        std::int64_t index =
            parse_int(tok_index, tokens.line_no(), "node index");
        TSPOPT_CHECK_MSG(index >= 1 && index <= header.dimension,
                         "line " << tokens.line_no() << ": node index "
                                 << index << " out of range [1, "
                                 << header.dimension << "]");
        double x = parse_double(tok_x, tokens.line_no(), "x coordinate");
        double y = parse_double(tok_y, tokens.line_no(), "y coordinate");
        auto slot = static_cast<std::size_t>(index - 1);
        TSPOPT_CHECK_MSG(!seen[slot], "line " << tokens.line_no()
                                              << ": duplicate node index "
                                              << index);
        seen[slot] = 1;
        pts[slot] = {static_cast<float>(x), static_cast<float>(y)};
      }
      if (key == "NODE_COORD_SECTION") {
        points = std::move(pts);
        saw_coords = true;
      } else {
        display_points = std::move(pts);
      }
    } else if (key == "EDGE_WEIGHT_SECTION") {
      TSPOPT_CHECK_MSG(header.dimension > 0,
                       "line " << at_line
                               << ": DIMENSION must precede "
                                  "EDGE_WEIGHT_SECTION");
      TSPOPT_CHECK_MSG(!header.edge_weight_format.empty(),
                       "line " << at_line
                               << ": EDGE_WEIGHT_FORMAT must precede "
                                  "EDGE_WEIGHT_SECTION");
      auto n = static_cast<std::size_t>(header.dimension);
      TokenStream tokens(source);
      auto raw = read_ints(
          tokens, triangle_count(header.edge_weight_format, n, at_line));
      matrix = expand_matrix(header.edge_weight_format, raw, n);
      saw_matrix = true;
    } else if (key == "EOF") {
      break;
    } else if (key == "FIXED_EDGES_SECTION" || key == "TOUR_SECTION") {
      TSPOPT_CHECK_MSG(false,
                       "line " << at_line << ": unsupported section: " << key);
    }
    // Unknown keywords with values are ignored (TSPLIB extensions).
  }

  if (saw_matrix) {
    TSPOPT_CHECK_MSG(header.edge_weight_type == "EXPLICIT",
                     "EDGE_WEIGHT_SECTION requires EDGE_WEIGHT_TYPE EXPLICIT");
    auto n = static_cast<std::size_t>(header.dimension);
    return Instance(header.name, std::move(matrix), n,
                    std::move(display_points));
  }
  TSPOPT_CHECK_MSG(saw_coords, "no NODE_COORD_SECTION or EDGE_WEIGHT_SECTION");
  TSPOPT_CHECK_MSG(!header.edge_weight_type.empty(),
                   "missing EDGE_WEIGHT_TYPE");
  TSPOPT_CHECK_MSG(
      points.size() == static_cast<std::size_t>(header.dimension),
      "coordinate count does not match DIMENSION");
  return Instance(header.name, metric_from_string(header.edge_weight_type),
                  std::move(points));
}

Instance load_tsplib(const std::string& path) {
  std::ifstream in(path);
  TSPOPT_CHECK_MSG(in.good(), "cannot open TSPLIB file: " << path);
  return parse_tsplib(in);
}

void write_tsplib(std::ostream& out, const Instance& instance) {
  TSPOPT_CHECK_MSG(instance.metric() != Metric::kExplicit,
                   "writer supports coordinate-based instances only");
  out << "NAME : " << instance.name() << "\n"
      << "TYPE : TSP\n"
      << "DIMENSION : " << instance.n() << "\n"
      << "EDGE_WEIGHT_TYPE : " << to_string(instance.metric()) << "\n"
      << "NODE_COORD_SECTION\n";
  // max_digits10 guarantees the parsed floats are bit-identical to the
  // written ones (rounded metrics are sensitive to the last ulp).
  out << std::setprecision(std::numeric_limits<float>::max_digits10);
  for (std::int32_t i = 0; i < instance.n(); ++i) {
    const Point& p = instance.point(i);
    out << (i + 1) << ' ' << p.x << ' ' << p.y << "\n";
  }
  out << "EOF\n";
}

void save_tsplib(const std::string& path, const Instance& instance) {
  std::ofstream out(path);
  TSPOPT_CHECK_MSG(out.good(), "cannot write TSPLIB file: " << path);
  write_tsplib(out, instance);
}

}  // namespace tspopt
