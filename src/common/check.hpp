// Lightweight runtime checking macros used across the library.
//
// TSPOPT_CHECK is always on (it guards API contracts and file parsing);
// TSPOPT_DCHECK compiles away in release builds and guards hot-path
// invariants that are exercised by the test suite.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tspopt {

// Thrown when a TSPOPT_CHECK fails. Deriving from std::runtime_error keeps
// the checks testable (EXPECT_THROW) instead of aborting the process.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace tspopt

#define TSPOPT_CHECK(expr)                                              \
  do {                                                                  \
    if (!(expr))                                                        \
      ::tspopt::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define TSPOPT_CHECK_MSG(expr, msg)                                     \
  do {                                                                  \
    if (!(expr)) {                                                      \
      std::ostringstream tspopt_os_;                                    \
      tspopt_os_ << msg;                                                \
      ::tspopt::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                     tspopt_os_.str());                 \
    }                                                                   \
  } while (0)

#ifndef NDEBUG
#define TSPOPT_DCHECK(expr) TSPOPT_CHECK(expr)
#else
#define TSPOPT_DCHECK(expr) \
  do {                      \
  } while (0)
#endif
