// Streaming statistics (Welford) and small-sample summaries used by the
// benchmark harnesses to report repeated-measurement noise.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.hpp"

namespace tspopt {

// Numerically stable running mean/variance over a stream of doubles.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = n_ == 1 ? x : std::min(min_, x);
    max_ = n_ == 1 ? x : std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Percentile of a sample using linear interpolation between order
// statistics. `q` in [0, 1]. The input is copied; callers keep their data.
inline double percentile(std::vector<double> xs, double q) {
  TSPOPT_CHECK(!xs.empty());
  TSPOPT_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  double pos = q * static_cast<double>(xs.size() - 1);
  auto lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

inline double median(std::vector<double> xs) {
  return percentile(std::move(xs), 0.5);
}

}  // namespace tspopt
