// Deterministic, seedable random number generation.
//
// The library never uses std::rand or unseeded std::random_device: every
// stochastic component (instance generators, perturbations, ILS) takes an
// explicit 64-bit seed so experiments are reproducible run-to-run.
#pragma once

#include <cstdint>
#include <limits>

namespace tspopt {

// SplitMix64 — used to expand a single user seed into independent streams.
// Reference: Steele, Lea, Flood. "Fast splittable pseudorandom number
// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// PCG32 (pcg_xsh_rr_64_32) — the main generator. Small state, good
// statistical quality, trivially seedable with independent streams.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed, std::uint64_t stream = 0xDA3E39CB94B95BDBULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    next();
    state_ += seed;
    next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  result_type next() {
    std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  std::uint64_t next_u64() {
    return (static_cast<std::uint64_t>(next()) << 32) | next();
  }

  // Unbiased integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint32_t next_below(std::uint32_t bound) {
    if (bound <= 1) return 0;
    std::uint64_t m = static_cast<std::uint64_t>(next()) * bound;
    auto lo = static_cast<std::uint32_t>(m);
    if (lo < bound) {
      std::uint32_t threshold = (0u - bound) % bound;
      while (lo < threshold) {
        m = static_cast<std::uint64_t>(next()) * bound;
        lo = static_cast<std::uint32_t>(m);
      }
    }
    return static_cast<std::uint32_t>(m >> 32);
  }

  // Integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint32_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Uniform float in [lo, hi).
  float next_float(float lo, float hi) {
    return lo + static_cast<float>(next_double()) * (hi - lo);
  }

  // The complete generator state, for checkpoint/resume: a generator
  // restored from a saved State continues the exact output stream.
  struct State {
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
  };

  State save() const { return {state_, inc_}; }
  void restore(const State& s) {
    state_ = s.state;
    inc_ = s.inc;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace tspopt
