// Environment-variable knobs shared by benches and examples.
//
// REPRO_SCALE=full lifts the default instance-size caps (the paper's largest
// runs take hours; the default "ci" scale keeps every bench binary under a
// few minutes on a laptop-class CPU).
#pragma once

#include <cstdlib>
#include <string>

namespace tspopt {

inline std::string env_or(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

inline bool full_scale() { return env_or("REPRO_SCALE", "ci") == "full"; }

inline long env_long_or(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

}  // namespace tspopt
