// Wall-clock timing helpers for benchmarks and experiment harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace tspopt {

// Monotonic stopwatch. Construct (or reset()) to start, query elapsed time
// at any point without stopping.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }
  std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace tspopt
