// A tiny declarative command-line parser for the example programs.
//
// Supports `--flag value`, `--flag=value`, boolean `--flag`, and
// positional arguments; generates a usage string. Deliberately minimal —
// the examples need readable argument handling, not a framework.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.hpp"

namespace tspopt {

class CliParser {
 public:
  explicit CliParser(std::string program, std::string description = "")
      : program_(std::move(program)), description_(std::move(description)) {}

  // Declare options before parse(). `fallback` renders in the usage text.
  void add_flag(const std::string& name, const std::string& help) {
    options_[name] = {help, "", true};
  }
  void add_option(const std::string& name, const std::string& help,
                  const std::string& fallback = "") {
    options_[name] = {help, fallback, false};
  }
  void add_positional(const std::string& name, const std::string& help) {
    positionals_.push_back({name, help});
  }

  // Returns false (and fills error()) on unknown options or a missing
  // value; callers print usage() and exit.
  bool parse(int argc, const char* const* argv) {
    for (int a = 1; a < argc; ++a) {
      std::string arg = argv[a];
      if (arg.rfind("--", 0) == 0) {
        std::string name = arg.substr(2);
        std::string value;
        bool has_value = false;
        auto eq = name.find('=');
        if (eq != std::string::npos) {
          value = name.substr(eq + 1);
          name = name.substr(0, eq);
          has_value = true;
        }
        auto it = options_.find(name);
        if (it == options_.end()) {
          error_ = "unknown option --" + name;
          return false;
        }
        if (it->second.is_flag) {
          if (has_value) {
            error_ = "--" + name + " takes no value";
            return false;
          }
          values_[name] = "true";
        } else {
          if (!has_value) {
            if (a + 1 >= argc) {
              error_ = "--" + name + " needs a value";
              return false;
            }
            value = argv[++a];
          }
          values_[name] = value;
        }
      } else {
        positional_values_.push_back(arg);
      }
    }
    if (positional_values_.size() > positionals_.size()) {
      error_ = "too many positional arguments";
      return false;
    }
    return true;
  }

  bool has(const std::string& name) const { return values_.count(name) > 0; }

  std::string get(const std::string& name,
                  const std::string& fallback = "") const {
    auto it = values_.find(name);
    if (it != values_.end()) return it->second;
    auto opt = options_.find(name);
    if (opt != options_.end() && !opt->second.fallback.empty()) {
      return opt->second.fallback;
    }
    return fallback;
  }

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      return std::stoll(it->second);
    } catch (...) {
      return fallback;
    }
  }

  double get_double(const std::string& name, double fallback) const {
    auto it = values_.find(name);
    if (it == values_.end()) return fallback;
    try {
      return std::stod(it->second);
    } catch (...) {
      return fallback;
    }
  }

  std::optional<std::string> positional(std::size_t index) const {
    if (index < positional_values_.size()) return positional_values_[index];
    return std::nullopt;
  }

  const std::string& error() const { return error_; }

  std::string usage() const {
    std::ostringstream os;
    os << "usage: " << program_;
    for (const auto& p : positionals_) os << " [" << p.name << "]";
    if (!options_.empty()) os << " [options]";
    os << "\n";
    if (!description_.empty()) os << description_ << "\n";
    for (const auto& p : positionals_) {
      os << "  " << p.name << "  " << p.help << "\n";
    }
    for (const auto& [name, opt] : options_) {
      os << "  --" << name << (opt.is_flag ? "" : " <v>") << "  " << opt.help;
      if (!opt.fallback.empty()) os << " (default: " << opt.fallback << ")";
      os << "\n";
    }
    return os.str();
  }

 private:
  struct Option {
    std::string help;
    std::string fallback;
    bool is_flag = false;
  };
  struct Positional {
    std::string name;
    std::string help;
  };

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<Positional> positionals_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_values_;
  std::string error_;
};

}  // namespace tspopt
