#include "benchsup/workloads.hpp"

#include "common/env.hpp"

namespace tspopt::benchsup {

std::int32_t executed_size_cap() {
  if (full_scale()) return 1 << 30;
  return static_cast<std::int32_t>(env_long_or("REPRO_SIZE_CAP", 25000));
}

std::vector<CatalogEntry> executed_entries() {
  std::vector<CatalogEntry> out;
  std::int32_t cap = executed_size_cap();
  for (const CatalogEntry& e : paper_catalog()) {
    if (e.n <= cap) out.push_back(e);
  }
  return out;
}

std::vector<CatalogEntry> sweep_entries() { return executed_entries(); }

}  // namespace tspopt::benchsup
