// Versioned benchmark-report emission (tspopt.bench_report v1).
//
// Shared by every bench binary that writes a BENCH_*.json for
// scripts/bench_compare.py to diff against a committed baseline. The
// comparator's contract lives in the metric names:
//   - best_length / best_delta / best_index / improvements are EXACT:
//     they must be bit-deterministic for the fixed workload, and the
//     comparator requires baseline equality (a mismatch is an
//     algorithmic change, not noise);
//   - *_per_sec metrics are THROUGHPUT: gated with a relative threshold,
//     and downgraded to warnings when the run fingerprint (CPU, SIMD
//     level, thread count) does not match the baseline's;
//   - everything else is informational.
// Reports that derive *_per_sec from the analytic device model (counted
// work priced by simt::PerfModel) are deterministic too and pass the
// threshold gate on any machine.
#pragma once

#include <string>
#include <vector>

namespace tspopt::benchsup {

struct Metric {
  std::string name;
  double value = 0.0;
};

struct BenchResult {
  std::string name;
  std::vector<Metric> metrics;
};

// Writes `<path>` as one tspopt.bench_report v1 document: the run
// fingerprint (run id, CPU model, resolved SIMD level, thread count, git
// describe, smoke flag) plus one {name, metrics} object per benchmark.
void write_report(const std::string& path, const std::string& kind,
                  bool smoke, const std::vector<BenchResult>& results);

}  // namespace tspopt::benchsup
