#include "benchsup/report.hpp"

#include <cstdint>
#include <fstream>
#include <iostream>

#include "common/check.hpp"
#include "obs/json.hpp"
#include "obs/runinfo.hpp"
#include "parallel/thread_pool.hpp"
#include "solver/simd.hpp"

namespace tspopt::benchsup {

void write_report(const std::string& path, const std::string& kind,
                  bool smoke, const std::vector<BenchResult>& results) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema").value("tspopt.bench_report");
  w.key("schema_version").value(std::int64_t{1});
  w.key("kind").value(kind);
  w.key("generated_utc").value(obs::rfc3339_utc_now_ms());
  w.key("run").begin_object();
  w.key("id").value(obs::run_id());
  w.key("cpu").value(obs::cpu_model());
  w.key("simd").value(simd::active().name);
  w.key("simd_width").value(static_cast<std::int64_t>(simd::active().width));
  w.key("threads").value(
      static_cast<std::uint64_t>(ThreadPool::shared().size()));
  w.key("git").value(obs::git_describe());
  w.key("smoke").value(smoke);
  w.end_object();
  w.key("benchmarks").begin_array();
  for (const BenchResult& r : results) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("metrics").begin_object();
    for (const Metric& m : r.metrics) w.key(m.name).value(m.value);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  TSPOPT_CHECK_MSG(out.good(), "cannot open bench report " << path);
  out << w.str() << '\n';
  TSPOPT_CHECK_MSG(out.good(), "failed writing bench report " << path);
  std::cout << "wrote " << path << " (" << results.size()
            << " benchmarks)\n";
}

}  // namespace tspopt::benchsup
