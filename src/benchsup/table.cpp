#include "benchsup/table.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.hpp"

namespace tspopt::benchsup {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TSPOPT_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  TSPOPT_CHECK_MSG(cells.size() == headers_.size(),
                   "row has " << cells.size() << " cells, expected "
                              << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << "  ";
      out << (c == 0 ? std::left : std::right)
          << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {
void write_csv_cell(std::ostream& out, const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    out << cell;
    return;
  }
  out << '"';
  for (char ch : cell) {
    if (ch == '"') out << '"';
    out << ch;
  }
  out << '"';
}
}  // namespace

void Table::write_csv(std::ostream& out) const {
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      write_csv_cell(out, row[c]);
    }
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
}

std::string maybe_export_csv(const Table& table, const std::string& name) {
  const char* dir = std::getenv("REPRO_ARTIFACTS");
  if (dir == nullptr || *dir == '\0') return {};
  std::string path = std::string(dir) + "/" + name + ".csv";
  std::ofstream out(path);
  TSPOPT_CHECK_MSG(out.good(), "cannot write CSV artifact: " << path);
  table.write_csv(out);
  return path;
}

std::string fmt_us(double us) {
  std::ostringstream os;
  os << std::fixed;
  if (us < 1000.0) {
    os << std::setprecision(us < 100.0 ? 1 : 0) << us << " us";
  } else if (us < 1e6) {
    os << std::setprecision(2) << us / 1e3 << " ms";
  } else if (us < 60e6) {
    os << std::setprecision(2) << us / 1e6 << " s";
  } else if (us < 3600e6) {
    os << std::setprecision(1) << us / 60e6 << " m";
  } else {
    os << std::setprecision(1) << us / 3600e6 << " h";
  }
  return os.str();
}

std::string fmt_count(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits);
  if (v < 1e3) {
    os << v;
  } else if (v < 1e6) {
    os << v / 1e3 << " k";
  } else if (v < 1e9) {
    os << v / 1e6 << " M";
  } else {
    os << v / 1e9 << " G";
  }
  return os.str();
}

std::string fmt_fixed(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string fmt_bytes(std::size_t bytes) {
  std::ostringstream os;
  os << std::fixed;
  auto b = static_cast<double>(bytes);
  if (b < 1024.0) {
    os << bytes << " B";
  } else if (b < 1024.0 * 1024.0) {
    os << std::setprecision(1) << b / 1024.0 << " kB";
  } else if (b < 1024.0 * 1024.0 * 1024.0) {
    os << std::setprecision(1) << b / (1024.0 * 1024.0) << " MB";
  } else {
    os << std::setprecision(2) << b / (1024.0 * 1024.0 * 1024.0) << " GB";
  }
  return os.str();
}

}  // namespace tspopt::benchsup
