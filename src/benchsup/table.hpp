// Fixed-width console table formatting shared by the bench binaries, so
// every reproduced table/figure prints in a consistent, diff-friendly
// layout (and mirrors the paper's row structure).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace tspopt::benchsup {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Append one row; cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  void print(std::ostream& out) const;

  // RFC-4180-style CSV (quotes cells containing commas/quotes/newlines).
  void write_csv(std::ostream& out) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Number formatting helpers for table cells.
std::string fmt_us(double microseconds);      // adaptive us/ms/s
std::string fmt_count(double v, int digits = 1);  // 12.3 M style
std::string fmt_fixed(double v, int digits);
std::string fmt_bytes(std::size_t bytes);     // adaptive kB/MB/GB

// If the REPRO_ARTIFACTS environment variable names a directory, write the
// table there as <name>.csv and return the path; otherwise do nothing.
// Lets every bench run double as a plot-ready data export.
std::string maybe_export_csv(const Table& table, const std::string& name);

}  // namespace tspopt::benchsup
