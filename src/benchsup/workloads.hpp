// Shared bench workload selection.
//
// The paper's evaluation spans 52 to 744,710 cities; a full-scale rerun of
// its largest rows takes hours even on the 2013 GPU. By default the bench
// binaries run every catalog instance up to a size cap that keeps each
// binary to a couple of minutes, and *model* (not execute) the larger
// rows. REPRO_SCALE=full lifts the cap.
#pragma once

#include <cstdint>
#include <vector>

#include "tsp/catalog.hpp"

namespace tspopt::benchsup {

// Default executable-size cap for the CI scale (see env.hpp).
std::int32_t executed_size_cap();

// Catalog entries whose instances the benches actually run.
std::vector<CatalogEntry> executed_entries();

// The Fig 9 / Fig 10 problem-size sweep (catalog sizes up to the cap).
std::vector<CatalogEntry> sweep_entries();

}  // namespace tspopt::benchsup
