// tspoptd — the solve-service daemon.
//
// Serves the line-delimited-JSON solve protocol (see serve/daemon.hpp) on
// 127.0.0.1 over a pool of simulated SIMT devices:
//
//   $ ./examples/tspoptd --port 7878 --devices 3 --workers 4
//   tspoptd listening on 127.0.0.1:7878 (4 workers, 3 devices) run <id>
//
// `--port 0` binds an ephemeral port (printed on the first line and, with
// `--port-file`, written to a file — the race-free startup handshake
// ci.sh uses). `--flaky` makes one card drop a fraction of launches, so
// the per-job fault quarantine/retry machinery is observable in the
// telemetry of a live server.
//
// `--admin-port N` (0 = ephemeral, `--admin-port-file` for the handshake)
// additionally serves the HTTP admin plane on 127.0.0.1: /metrics
// (Prometheus text), /healthz, /readyz (503 while draining or when the
// journal is unhealthy), /statusz and /tracez. The admin listener stays
// up through a SIGTERM drain so probes observe the drain.
//
// Signals: SIGTERM drains (stops admission, finishes every queued and
// running job, then exits 143); SIGINT cancels the backlog and stops
// running jobs at their next hook poll (exits 130). Both paths flush all
// telemetry sinks (JSONL log, Prometheus exposition, trace, sampler
// dump) before exiting. Telemetry is env-driven as everywhere else:
// TSPOPT_LOG, TSPOPT_PROM, TSPOPT_SAMPLE_MS, TSPOPT_TRACE,
// TSPOPT_PROFILE (whole-lifetime CPU profile; for an on-demand window on
// a live daemon use GET /profilez?seconds=N instead).
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "obs/flush.hpp"
#include "obs/log.hpp"
#include "obs/profiler.hpp"
#include "obs/prometheus.hpp"
#include "obs/runinfo.hpp"
#include "obs/sampler.hpp"
#include "obs/trace.hpp"
#include "serve/daemon.hpp"
#include "serve/shutdown.hpp"
#include "simt/device.hpp"
#include "simt/device_pool.hpp"
#include "simt/fault.hpp"

int main(int argc, char** argv) {
  using namespace tspopt;

  CliParser cli("tspoptd", "TSP solve-service daemon (line-delimited JSON)");
  cli.add_option("port", "TCP port on 127.0.0.1 (0 = ephemeral)", "7878");
  cli.add_option("port-file", "write the bound port to this file");
  cli.add_option("admin-port",
                 "HTTP admin plane port: /metrics /healthz /readyz /statusz "
                 "/tracez /profilez (0 = ephemeral; omit to disable)");
  cli.add_option("admin-port-file", "write the bound admin port to this file");
  cli.add_option("profilez-max-seconds",
                 "longest /profilez capture honored (0 = disable the "
                 "endpoint)",
                 "60");
  cli.add_option("devices", "simulated devices in the pool", "2");
  cli.add_option("workers", "scheduler worker threads", "2");
  cli.add_option("queue", "queued-job capacity (backpressure bound)", "16");
  cli.add_option("journal-dir",
                 "write-ahead job journal directory (crash-safe restart "
                 "recovery; empty = in-memory only)");
  cli.add_option("checkpoint-every",
                 "ILS iterations between per-job spool checkpoints "
                 "(needs --journal-dir; 0 = off)",
                 "64");
  cli.add_option("max-batch",
                 "micro-batcher: most batchable same-key jobs one worker "
                 "coalesces into a single batch pass (1 = off)",
                 "8");
  cli.add_option("batch-wait-ms",
                 "micro-batcher: how long a batchable lead job lingers for "
                 "followers (0 = take only what is already queued)",
                 "2");
  cli.add_flag("flaky", "inject transient launch faults on one device");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }

  obs::Log::global();
  obs::Sampler::global_from_env();
  obs::PromExporter::global_from_env();
  obs::Profiler::global_from_env();
  // Label this process's track in the Chrome trace export, so a client
  // export concatenated with ours reads as two named process lanes.
  obs::Tracer::global().set_process_name("tspoptd");
  obs::install_flush_hooks();
  serve::ShutdownSignal& shutdown = serve::ShutdownSignal::global();
  shutdown.install();

  auto device_count = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("devices", 2)));
  simt::FaultPlan plan(1);
  if (cli.has("flaky")) {
    plan.inject_random("gpu0", simt::FaultKind::kLaunchFailure, 0.05);
  }
  simt::FaultInjector injector(plan);
  std::vector<std::unique_ptr<simt::Device>> owned;
  std::vector<simt::Device*> devices;
  for (std::size_t d = 0; d < device_count; ++d) {
    owned.push_back(std::make_unique<simt::Device>(simt::gtx680_cuda()));
    owned.back()->set_label("gpu" + std::to_string(d));
    if (cli.has("flaky")) owned.back()->set_fault_injector(&injector);
    devices.push_back(owned.back().get());
  }
  simt::DevicePool pool(devices);

  serve::DaemonOptions options;
  options.port = static_cast<std::uint16_t>(cli.get_int("port", 7878));
  options.scheduler.workers = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("workers", 2)));
  options.scheduler.queue_capacity = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("queue", 16)));
  if (cli.has("journal-dir")) {
    options.scheduler.journal_dir = cli.get("journal-dir");
    options.scheduler.checkpoint_every_iterations =
        cli.get_int("checkpoint-every", 64);
  }
  options.scheduler.batcher.max_batch = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cli.get_int("max-batch", 8)));
  options.scheduler.batcher.max_wait_ms =
      std::max(0.0, cli.get_double("batch-wait-ms", 2.0));
  if (cli.has("admin-port")) {
    options.admin_port = static_cast<int>(cli.get_int("admin-port", 0));
  }
  options.profilez_max_seconds =
      static_cast<double>(cli.get_int("profilez-max-seconds", 60));

  serve::Daemon daemon(pool, options);
  try {
    daemon.start();
  } catch (const CheckError& e) {
    std::cerr << "tspoptd: " << e.what() << "\n";
    return 2;
  }
  std::cout << "tspoptd listening on 127.0.0.1:" << daemon.port() << " ("
            << options.scheduler.workers << " workers, " << device_count
            << " devices) run " << obs::run_id() << std::endl;
  if (!options.scheduler.journal_dir.empty()) {
    std::cout << "tspoptd: journal " << options.scheduler.journal_dir
              << ", recovered " << daemon.scheduler().stats().recovered
              << " job(s)" << std::endl;
  }
  if (daemon.admin_port() != 0) {
    std::cout << "tspoptd: admin on 127.0.0.1:" << daemon.admin_port()
              << " (/metrics /healthz /readyz /statusz /tracez /profilez)"
              << std::endl;
  }
  if (cli.has("port-file")) {
    std::ofstream out(cli.get("port-file"));
    out << daemon.port() << "\n";
  }
  if (cli.has("admin-port-file") && daemon.admin_port() != 0) {
    std::ofstream out(cli.get("admin-port-file"));
    out << daemon.admin_port() << "\n";
  }

  while (!shutdown.requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  // SIGTERM = graceful drain (queued + running jobs finish); SIGINT =
  // fast stop (backlog cancelled, running jobs stop at the next poll).
  bool drain = shutdown.signal() == SIGTERM;
  std::cout << "tspoptd: caught " << (drain ? "SIGTERM" : "SIGINT")
            << (drain ? ", draining " : ", cancelling ")
            << daemon.scheduler().stats().queue_depth +
                   daemon.scheduler().stats().active_jobs
            << " live job(s)" << std::endl;
  daemon.stop(drain);
  pool.close();

  serve::Scheduler::Stats stats = daemon.scheduler().stats();
  std::cout << "tspoptd: done — " << stats.finished << " finished, "
            << stats.cancelled << " cancelled, " << stats.expired
            << " expired, " << stats.failed << " failed ("
            << stats.retries << " retries)" << std::endl;
  obs::flush_all_telemetry();
  return shutdown.exit_code();
}
