// TSPLIB workbench: parse any TSPLIB .tsp file (or materialize a named
// catalog instance), report its properties, and optionally solve it with
// any of the library's 2-opt engines.
//
//   $ ./examples/tsplib_tool                                # demo: berlin52
//   $ ./examples/tsplib_tool path/to/file.tsp --solve
//   $ ./examples/tsplib_tool pr2392 --solve --engine gpu-tiled
//   $ ./examples/tsplib_tool kroA200 --solve --svg /tmp/kroA200.svg
//
// Exercises the full TSPLIB substrate (parser, writer, metrics, catalog,
// tour files, SVG) plus the engine factory.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "obs/log.hpp"
#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/runinfo.hpp"
#include "obs/sampler.hpp"
#include "solver/constructive.hpp"
#include "solver/engine_factory.hpp"
#include "solver/local_search.hpp"
#include "solver/obs_adapters.hpp"
#include "solver/simd.hpp"
#include "solver/twoopt_generic.hpp"
#include "tsp/catalog.hpp"
#include "tsp/svg.hpp"
#include "tsp/tour_io.hpp"
#include "tsp/tsplib.hpp"

int main(int argc, char** argv) {
  using namespace tspopt;

  CliParser cli("tsplib_tool", "inspect and solve TSPLIB instances");
  cli.add_positional("instance", "TSPLIB file path or catalog name");
  cli.add_flag("solve", "descend to the 2-opt local minimum");
  cli.add_option("engine", "2-opt engine (see --engines)", "cpu-parallel");
  cli.add_option("seconds", "solve time budget", "30");
  cli.add_option("svg", "write the tour as SVG to this path");
  cli.add_option("tour", "write the tour in TSPLIB format to this path");
  cli.add_option("report", "write a machine-readable run report (JSON)");
  cli.add_flag("engines", "list available engine names and exit");
  cli.add_flag("list-engines",
               "list engines with one-line descriptions and exit");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  if (cli.has("engines")) {
    for (const std::string& name : EngineFactory::available()) {
      std::cout << name << "\n";
    }
    return 0;
  }
  if (cli.has("list-engines")) {
    std::size_t width = 0;
    for (const auto& info : EngineFactory::roster()) {
      width = std::max(width, info.name.size());
    }
    for (const auto& info : EngineFactory::roster()) {
      std::cout << info.name << std::string(width - info.name.size() + 2, ' ')
                << info.description << "\n";
    }
    return 0;
  }

  // Live telemetry, all env-driven: TSPOPT_LOG (JSONL event log),
  // TSPOPT_SAMPLE_MS (registry time series), TSPOPT_PROM (Prometheus
  // exposition file, also refreshed on SIGUSR1).
  obs::Log::global();
  obs::Sampler* sampler = obs::Sampler::global_from_env();
  obs::PromExporter::global_from_env();

  std::string target = cli.positional(0).value_or("berlin52");
  bool solve = cli.has("solve") || !cli.positional(0).has_value();

  WallTimer parse_timer;
  Instance instance = [&]() {
    std::ifstream probe(target);
    if (probe.good()) {
      std::cout << "parsing TSPLIB file: " << target << "\n";
      try {
        return load_tsplib(target);
      } catch (const CheckError& e) {
        std::cerr << "parse error in " << target << ": " << e.what() << "\n";
        std::exit(2);
      }
    }
    auto entry = find_catalog_entry(target);
    if (!entry) {
      std::cerr << "not a readable file and not a catalog name: " << target
                << "\ncatalog names: ";
      for (const auto& e : paper_catalog()) std::cerr << e.name << " ";
      std::cerr << "\n";
      std::exit(2);
    }
    std::cout << "materializing catalog instance: " << target
              << (target == "berlin52" ? " (real TSPLIB data)"
                                       : " (synthetic stand-in)")
              << "\n";
    return make_catalog_instance(*entry);
  }();
  double parse_seconds = parse_timer.seconds();

  std::cout << "name:      " << instance.name() << "\n"
            << "cities:    " << instance.n() << "\n"
            << "metric:    " << to_string(instance.metric()) << "\n"
            << "parsed in: " << parse_seconds * 1e3 << " ms\n";
  if (instance.has_coordinates()) {
    auto [lo, hi] = instance.bounding_box();
    std::cout << "bounds:    [" << lo.x << ", " << lo.y << "] .. [" << hi.x
              << ", " << hi.y << "]\n";
  }
  std::cout << "2-opt pairs per pass: " << pair_count(instance.n()) << "\n"
            << "run id:    " << obs::run_id() << "\n"
            << "started:   " << obs::rfc3339_utc_now_ms() << "\n"
            << "simd:      " << simd::active().name << " (width "
            << simd::active().width << ")\n"
            << "threads:   " << ThreadPool::shared().size() << "\n"
            << "git:       " << obs::git_describe() << "\n";

  obs::RunReport report;
  describe_environment(report);
  report.set_instance(instance.name(), instance.n(),
                      to_string(instance.metric()));
  report.set_config("source", target);
  report.set_summary("parse_seconds", parse_seconds);

  Tour tour = instance.metric() == Metric::kExplicit
                  ? nearest_neighbor(instance)
                  : multiple_fragment(instance);
  std::cout << "constructive tour: " << tour.length(instance) << "\n";
  report.set_summary("constructive_length",
                     static_cast<double>(tour.length(instance)));

  if (solve) {
    EngineFactory factory(&instance);
    std::unique_ptr<TwoOptEngine> engine;
    if (instance.euclidean_like()) {
      engine = factory.create(cli.get("engine"));
    } else {
      std::cout << "(non-EUC_2D metric: using the metric-generic engine)\n";
      engine = std::make_unique<TwoOptGeneric>();
    }
    LocalSearchOptions opts;
    opts.time_limit_seconds = cli.get_double("seconds", 30.0);
    LocalSearchStats stats = local_search(*engine, instance, tour, opts);
    std::cout << "2-opt [" << engine->name() << "] "
              << (stats.reached_local_minimum ? "local minimum"
                                              : "(time-capped)")
              << ": " << tour.length(instance) << "  in "
              << stats.wall_seconds << " s, " << stats.moves_applied
              << " moves, " << stats.checks << " checks\n";
    report.set_engine(engine->name());
    report.set_summary("optimized_length",
                       static_cast<double>(tour.length(instance)));
    report.set_summary("solve_seconds", stats.wall_seconds);
    report.set_summary("moves_applied",
                       static_cast<double>(stats.moves_applied));
    report.set_summary("checks", static_cast<double>(stats.checks));
    if (stats.wall_seconds > 0.0) {
      report.set_summary("checks_per_sec", static_cast<double>(stats.checks) /
                                               stats.wall_seconds);
    }
  }

  if (cli.has("tour")) {
    save_tsplib_tour(cli.get("tour"), tour, instance.name(),
                     tour.length(instance));
    std::cout << "wrote tour to " << cli.get("tour") << "\n";
  }
  if (cli.has("svg") && instance.has_coordinates()) {
    save_svg(cli.get("svg"), instance, &tour);
    std::cout << "wrote SVG to " << cli.get("svg") << "\n";
  }

  // Round-trip demonstration: write the instance back out as TSPLIB.
  if (instance.metric() != Metric::kExplicit) {
    std::string out_path = "/tmp/" + instance.name() + "_roundtrip.tsp";
    save_tsplib(out_path, instance);
    std::cout << "wrote TSPLIB copy to " << out_path << "\n";
  }

  // --report <file> writes the run report explicitly; TSPOPT_REPORT still
  // works as the env-driven fallback.
  if (sampler != nullptr) {
    sampler->stop();
    sampler->sample_now();  // final state closes every series
    report.set_timeseries(*sampler);
  }
  report.set_metrics(obs::Registry::global());
  if (cli.has("report")) {
    report.write(cli.get("report"));
    std::cout << "wrote run report to " << cli.get("report") << "\n";
  } else {
    std::string report_path = report.write_if_requested();
    if (!report_path.empty()) {
      std::cout << "wrote run report to " << report_path << "\n";
    }
  }
  return 0;
}
