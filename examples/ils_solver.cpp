// A complete TSP solver: Iterated Local Search (the paper's Algorithm 1)
// over the accelerated 2-opt, with the Or-opt extension as a finishing
// pass. This is the "downstream user" workload the paper motivates —
// solve a large instance to good quality, fast.
//
//   $ ./examples/ils_solver [n] [seconds] [seed] [engine] [iters]
//
// Defaults: n=2000 clustered cities, 10 s budget, seed 1, the
// cpu-parallel engine, unbounded iterations. `engine` is any
// EngineFactory roster name — the pruned engines (cpu-pruned,
// cpu-simd-pruned, gpu-pruned) make n >= 100k runs routine; `iters`
// bounds the ILS perturbation loop (-1 = until the time budget).
//
// Observability: set TSPOPT_TRACE=<file> for a Chrome/Perfetto trace of
// the run, TSPOPT_REPORT=<file> for a machine-readable run report
// (summary, convergence curve, metrics snapshot, time series, CPU
// profile attribution), TSPOPT_LOG=<level>[,path] for the structured
// JSONL event log, TSPOPT_SAMPLE_MS=<ms> for registry time-series
// sampling, TSPOPT_PROM=<file>[,ms] for a Prometheus exposition file
// (refreshed on SIGUSR1 too), and TSPOPT_PROFILE=<file>[,hz] for a
// span-attributed sampling CPU profile written as collapsed stacks. See
// README "Observability", "Live telemetry" and "Profiling".
#include <cstdlib>
#include <iostream>

#include "obs/log.hpp"
#include "obs/profiler.hpp"
#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/runinfo.hpp"
#include "obs/sampler.hpp"
#include "simt/device.hpp"
#include "solver/obs_adapters.hpp"
#include "solver/constructive.hpp"
#include "solver/ils.hpp"
#include "solver/engine_factory.hpp"
#include "solver/or_opt.hpp"
#include "tsp/generator.hpp"
#include "tsp/neighbor_lists.hpp"
#include "tsp/svg.hpp"
#include "tsp/tour_io.hpp"

int main(int argc, char** argv) {
  using namespace tspopt;

  std::int32_t n = argc > 1 ? std::atoi(argv[1]) : 2000;
  double seconds = argc > 2 ? std::atof(argv[2]) : 10.0;
  std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  std::string engine_name = argc > 4 ? argv[4] : "cpu-parallel";
  std::int64_t iters = argc > 5 ? std::atoll(argv[5]) : -1;
  if (n < 8) {
    std::cerr << "usage: ils_solver [n>=8] [seconds] [seed] [engine] "
                 "[iters]\n";
    return 2;
  }

  // Live telemetry, all env-driven (see header comment).
  obs::Log::global();
  obs::Sampler* sampler = obs::Sampler::global_from_env();
  obs::PromExporter::global_from_env();
  obs::Profiler* profiler = obs::Profiler::global_from_env();

  Instance instance =
      generate_clustered("demo" + std::to_string(n), n,
                         std::max(4, n / 250), seed);
  std::cout << "solving " << instance.name() << " (" << n << " cities), "
            << seconds << " s budget  [run " << obs::run_id() << "]\n";

  Tour initial = multiple_fragment(instance);
  std::cout << "multiple-fragment start: " << initial.length(instance)
            << "\n";

  // Any roster engine by name: the parallel-CPU 2-opt by default, the
  // candidate-list engines for large n, the gpu-* classes to run on the
  // SIMT simulator.
  EngineFactory factory(&instance);
  std::unique_ptr<TwoOptEngine> engine = factory.create(engine_name);
  std::cout << "engine: " << engine->name() << "\n";
  IlsOptions opts;
  opts.time_limit_seconds = seconds;
  opts.max_iterations = iters;
  opts.seed = seed;
  IlsResult result = iterated_local_search(*engine, instance, initial, opts);

  std::cout << "ILS: " << result.best_length << " after "
            << result.iterations << " iterations ("
            << result.improvements << " accepted), "
            << static_cast<double>(result.checks) / 1e6 << " M checks\n";
  std::cout << "convergence trace (" << result.trace.size() << " points):\n";
  for (const IlsTracePoint& p : result.trace) {
    std::cout << "  t=" << p.seconds << "s  len=" << p.length
              << "  iter=" << p.iteration << "\n";
  }

  // Finishing pass: Or-opt segment relocation (paper §VII).
  Tour best = result.best;
  OrOptStats or_stats =
      or_opt_descend(instance, best, factory.neighbor_lists());
  std::cout << "after Or-opt finishing: " << best.length(instance) << "  (-"
            << or_stats.improvement << " from " << or_stats.moves_applied
            << " relocations)\n";

  // Machine-readable run report when TSPOPT_REPORT is set.
  obs::RunReport report;
  describe_environment(report);
  report.set_instance(instance.name(), n, "EUC_2D");
  report.set_engine(engine->name());
  report.set_config("seed", std::to_string(seed));
  report.set_config("time_limit_seconds", std::to_string(seconds));
  report_ils(report, result);
  report.set_summary("initial_length",
                     static_cast<double>(initial.length(instance)));
  report.set_summary("or_opt_length",
                     static_cast<double>(best.length(instance)));
  report.set_summary("or_opt_moves",
                     static_cast<double>(or_stats.moves_applied));
  if (sampler != nullptr) {
    sampler->stop();
    sampler->sample_now();  // final state closes every series
    report.set_timeseries(*sampler);
  }
  if (profiler != nullptr) {
    // Stop before reading: the final drain folds the last ring contents,
    // so the attribution table covers the whole solve. The flush hooks
    // write the collapsed stacks and the Chrome sampler track at exit.
    profiler->stop();
    report.set_profile(*profiler);
  }
  report.set_metrics(obs::Registry::global());
  std::string report_path = report.write_if_requested();
  if (!report_path.empty()) {
    std::cout << "wrote run report to " << report_path << "\n";
  }

  // Persist the result in standard TSPLIB tour format plus a picture.
  std::string stem = "/tmp/" + instance.name();
  save_tsplib_tour(stem + ".tour", best, instance.name(),
                   best.length(instance));
  save_svg(stem + ".svg", instance, &best);
  std::cout << "wrote " << stem << ".tour and " << stem << ".svg\n";
  return 0;
}
