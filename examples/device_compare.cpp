// Device exploration: run the same 2-opt pass on several simulated
// devices and compare — functionally identical results, different
// constraints (shared-memory capacity changes the kernel/tile choice) and
// different modeled cost. Demonstrates the simt:: substrate as a
// library-level API, independent of the benches.
//
//   $ ./examples/device_compare [n]    # default 4000
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <memory>

#include "common/rng.hpp"
#include "simt/device.hpp"
#include "simt/perf_model.hpp"
#include "solver/twoopt_gpu.hpp"
#include "solver/twoopt_tiled.hpp"
#include "tsp/generator.hpp"

int main(int argc, char** argv) {
  using namespace tspopt;

  std::int32_t n = argc > 1 ? std::atoi(argv[1]) : 4000;
  if (n < 3) {
    std::cerr << "usage: device_compare [n>=3]\n";
    return 2;
  }
  Instance instance = generate_uniform("compare", n, 9);
  Pcg32 rng(3);
  Tour tour = Tour::random(n, rng);

  std::cout << "one full 2-opt pass over " << pair_count(n)
            << " pairs, n = " << n << "\n\n";
  std::cout << std::left << std::setw(38) << "device" << std::setw(10)
            << "kernel" << std::setw(10) << "shared" << std::setw(10)
            << "tile" << std::setw(14) << "best delta" << std::setw(14)
            << "modeled total\n";

  for (const simt::DeviceSpec& spec : simt::fig9_devices()) {
    simt::Device device(spec);
    std::unique_ptr<TwoOptEngine> engine;
    std::string kernel_kind, tile = "-";
    if (n <= TwoOptGpuSmall::max_cities(device)) {
      engine = std::make_unique<TwoOptGpuSmall>(device);
      kernel_kind = "single";
    } else {
      auto tiled = std::make_unique<TwoOptGpuTiled>(device);
      tile = std::to_string(tiled->tile());
      kernel_kind = "tiled";
      engine = std::move(tiled);
    }
    SearchResult r = engine->search(instance, tour);
    simt::PerfModel model(spec);
    double total_us = model.price(device.counters().snapshot()).total_us();
    std::cout << std::left << std::setw(38) << (spec.name + " " + spec.api)
              << std::setw(10) << kernel_kind << std::setw(10)
              << (std::to_string(spec.shared_mem_bytes / 1024) + " kB")
              << std::setw(10) << tile << std::setw(14) << r.best.delta
              << std::setw(14)
              << (std::to_string(static_cast<long>(total_us)) + " us")
              << "\n";
  }
  std::cout << "\nEvery device found the identical best move; only the "
               "constraints and the modeled cost differ.\n"
            << "Note the Radeons' 64 kB LDS fits the single-range kernel up "
               "to ~8k cities where the 48 kB devices already tile.\n";
  return 0;
}
