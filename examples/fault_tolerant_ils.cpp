// Fault-tolerant multi-device ILS with checkpoint/resume.
//
// Runs the paper's Algorithm 1 on a simulated multi-GPU host where one
// card is flaky (seeded random launch failures and hangs) and another
// dies outright mid-run. The solver retries transient faults with
// exponential backoff, quarantines the dead card and re-deals its tiles
// to the survivors, and — because every pass merges with the canonical
// (delta, index) order — still produces the exact tours a fault-free run
// would. Midway we also "kill" the process and resume from the periodic
// checkpoint to show the continuation is bit-identical.
//
//   $ ./examples/fault_tolerant_ils [n] [iterations] [seed]
//
// Defaults: n=1200 clustered cities, 24 perturbation rounds, seed 1.
// Live telemetry (all env-driven): TSPOPT_LOG=<level>[,path] streams the
// retry/quarantine/fault decisions as JSONL events, TSPOPT_SAMPLE_MS=<ms>
// samples the metrics registry into the report's timeseries section, and
// TSPOPT_PROM=<file>[,ms] keeps a Prometheus exposition file fresh.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "obs/flush.hpp"
#include "obs/log.hpp"
#include "obs/prometheus.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/runinfo.hpp"
#include "obs/sampler.hpp"
#include "serve/shutdown.hpp"
#include "simt/device.hpp"
#include "simt/fault.hpp"
#include "solver/checkpoint.hpp"
#include "solver/constructive.hpp"
#include "solver/ils.hpp"
#include "solver/obs_adapters.hpp"
#include "solver/twoopt_multi.hpp"
#include "tsp/generator.hpp"

int main(int argc, char** argv) {
  using namespace tspopt;

  std::int32_t n = argc > 1 ? std::atoi(argv[1]) : 1200;
  std::int64_t iterations = argc > 2 ? std::atoll(argv[2]) : 24;
  std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;
  if (n < 8 || iterations < 1) {
    std::cerr << "usage: fault_tolerant_ils [n>=8] [iterations>=1] [seed]\n";
    return 2;
  }

  obs::Log::global();
  obs::Sampler* sampler = obs::Sampler::global_from_env();
  obs::PromExporter::global_from_env();
  obs::install_flush_hooks();

  // SIGINT/SIGTERM drain instead of killing the run mid-pass: the latch
  // feeds every ILS loop's should_stop hook, so the solver stops at the
  // next poll with the best tour so far (and the checkpoint already on
  // disk), telemetry flushes, and the process exits 128+signo.
  serve::ShutdownSignal& shutdown = serve::ShutdownSignal::global();
  shutdown.install();
  auto drain_requested = [&shutdown] { return shutdown.requested(); };
  auto drained_exit = [&shutdown](const IlsResult& at) {
    std::cout << "\ndrained on signal " << shutdown.signal() << " after "
              << at.iterations << " iterations (best " << at.best_length
              << "); telemetry flushed\n";
    obs::flush_all_telemetry();
    return shutdown.exit_code();
  };

  Instance instance = generate_clustered("flaky" + std::to_string(n), n,
                                         std::max(4, n / 250), seed);
  Tour initial = multiple_fragment(instance);
  std::cout << "solving " << instance.name() << " (" << n
            << " cities) on 3 simulated GPUs, one flaky, one dying  [run "
            << obs::run_id() << "]\n";

  // A three-card host: gpu1 drops ~10% of launches (transient — retries
  // clear it), gpu2 fails permanently from its 6th launch onward.
  simt::FaultPlan plan(seed);
  plan.inject_random("gpu1", simt::FaultKind::kLaunchFailure, 0.08);
  plan.inject_random("gpu1", simt::FaultKind::kHang, 0.02);
  plan.inject({.device = "gpu2",
               .kind = simt::FaultKind::kLaunchFailure,
               .first_launch = 6,
               .count = simt::FaultSpec::kForever});
  simt::FaultInjector injector(plan);

  std::vector<std::unique_ptr<simt::Device>> owned;
  std::vector<simt::Device*> devices;
  for (int d = 0; d < 3; ++d) {
    owned.push_back(std::make_unique<simt::Device>(simt::gtx680_cuda()));
    owned.back()->set_label("gpu" + std::to_string(d));
    owned.back()->set_fault_injector(&injector);
    devices.push_back(owned.back().get());
  }

  MultiDeviceOptions mopts;
  mopts.backoff_initial_ms = 0.1;  // simulator faults clear instantly
  mopts.validate = true;           // cross-check accepted moves
  // A small tile forces a multi-tile deal so every card actually gets
  // work (tile=0 would fit these n in one tile on one card).
  std::int32_t tile = std::max<std::int32_t>(64, n / 8);
  TwoOptMultiDevice engine(devices, tile, mopts);

  const std::string ckpt = "/tmp/" + instance.name() + ".ckpt";
  IlsOptions opts;
  opts.time_limit_seconds = -1.0;  // iteration-bounded, for reproducibility
  opts.max_iterations = iterations;
  opts.seed = seed;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every = 4;
  opts.should_stop = drain_requested;

  // Leg 1: run halfway, then pretend the process was killed.
  IlsOptions half = opts;
  half.max_iterations = iterations / 2;
  IlsResult partial = iterated_local_search(engine, instance, initial, half);
  if (partial.stopped) return drained_exit(partial);
  std::cout << "\n-- process 'killed' after " << partial.iterations
            << " iterations, best " << partial.best_length << " --\n";

  // Leg 2: a fresh process loads the checkpoint and finishes the job.
  IlsCheckpoint resume_from = load_ils_checkpoint(ckpt);
  std::cout << "resuming from " << ckpt << " (iteration "
            << resume_from.iterations << ", best "
            << resume_from.best_length << ")\n";
  IlsResult resumed =
      iterated_local_search_resume(engine, instance, resume_from, opts);
  if (resumed.stopped) return drained_exit(resumed);

  // Reference: the same job never interrupted, on a healthy single device.
  simt::Device healthy(simt::gtx680_cuda());
  TwoOptMultiDevice ref_engine({&healthy}, tile);
  IlsOptions ref = opts;
  ref.checkpoint_path.clear();
  IlsResult straight =
      iterated_local_search(ref_engine, instance, initial, ref);
  if (straight.stopped) return drained_exit(straight);

  std::cout << "\nresumed run : " << resumed.best_length << " after "
            << resumed.iterations << " iterations\n";
  std::cout << "uninterrupted: " << straight.best_length << " after "
            << straight.iterations << " iterations\n";
  auto a = resumed.best.order();
  auto b = straight.best.order();
  std::cout << (resumed.best_length == straight.best_length &&
                        std::equal(a.begin(), a.end(), b.begin(), b.end())
                    ? "tours are BIT-IDENTICAL despite faults + kill/resume\n"
                    : "MISMATCH (bug!)\n");

  std::cout << "\nper-device health:\n";
  for (std::size_t d = 0; d < engine.device_count(); ++d) {
    const DeviceHealth& h = engine.health(d);
    auto snap = devices[d]->counters().snapshot();
    std::cout << "  " << h.label << ": " << h.failures << " failures, "
              << h.retries << " retries"
              << (h.quarantined ? ", QUARANTINED" : "") << "  (device: "
              << snap.launch_failures << " launch failures, " << snap.hangs
              << " hangs, " << snap.corrupted_results << " corruptions)\n";
  }
  std::cout << "tile re-deals: " << engine.redeals()
            << ", host fallback used: "
            << (engine.used_host_fallback() ? "yes" : "no") << "\n";

  // Machine-readable run report when TSPOPT_REPORT is set.
  obs::RunReport report;
  describe_environment(report);
  report.set_instance(instance.name(), n, "EUC_2D");
  report.set_engine(engine.name());
  report.set_config("seed", std::to_string(seed));
  report.set_config("max_iterations", std::to_string(iterations));
  report_ils(report, resumed);
  report_multi_device(report, engine);
  for (simt::Device* d : devices) describe_device(report, *d, -1.0);
  if (sampler != nullptr) {
    sampler->stop();
    sampler->sample_now();  // final state closes every series
    report.set_timeseries(*sampler);
  }
  report.set_metrics(obs::Registry::global());
  std::string report_path = report.write_if_requested();
  if (!report_path.empty()) {
    std::cout << "wrote run report to " << report_path << "\n";
  }

  std::remove(ckpt.c_str());
  return 0;
}
