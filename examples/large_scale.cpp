// Large-instance workflow — the scenario the paper's division scheme
// exists for ("the problem division scheme which allows to solve
// arbitrarily big problem instances using GPU"):
//
//   1. generate (or load) an instance far beyond the 6144-city
//      shared-memory limit,
//   2. construct a Multiple Fragment tour,
//   3. warm-start with cheap pruned descents (first-improvement + DLB),
//   4. polish with exact full-scan passes on the *tiled* simulated-GPU
//      kernel under a time budget,
//   5. write the tour (.tour) and a picture (.svg) to /tmp.
//
//   $ ./examples/large_scale --n 20000 --seconds 20
#include <iostream>

#include "common/cli.hpp"
#include "common/timer.hpp"
#include "simt/device.hpp"
#include "simt/perf_model.hpp"
#include "solver/constructive.hpp"
#include "solver/first_improvement.hpp"
#include "solver/local_search.hpp"
#include "solver/twoopt_tiled.hpp"
#include "tsp/generator.hpp"
#include "tsp/svg.hpp"
#include "tsp/tour_io.hpp"

int main(int argc, char** argv) {
  using namespace tspopt;

  CliParser cli("large_scale",
                "tiled-kernel workflow for instances beyond the "
                "shared-memory limit");
  cli.add_option("n", "city count", "20000");
  cli.add_option("seconds", "polish budget (s)", "15");
  cli.add_option("seed", "generator seed", "1");
  cli.add_option("k", "neighbor-list size for the warm start", "10");
  if (!cli.parse(argc, argv)) {
    std::cerr << cli.error() << "\n" << cli.usage();
    return 2;
  }
  auto n = static_cast<std::int32_t>(cli.get_int("n", 20000));
  double seconds = cli.get_double("seconds", 15.0);
  auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  auto k = static_cast<std::int32_t>(cli.get_int("k", 10));
  if (n < 8) {
    std::cerr << cli.usage();
    return 2;
  }

  WallTimer total;
  Instance inst = generate_clustered("large" + std::to_string(n), n,
                                     std::max(8, n / 400), seed);
  std::cout << "instance: " << inst.name() << " (" << n << " cities, "
            << pair_count(n) << " 2-opt pairs per pass)\n";

  Tour tour = multiple_fragment(inst, k);
  std::cout << "multiple fragment: " << tour.length(inst) << "  ["
            << total.seconds() << " s]\n";

  NeighborLists nl(inst, k);
  FirstImprovementStats warm = first_improvement_descent(inst, tour, nl);
  std::cout << "pruned warm start:  " << tour.length(inst) << "  ("
            << warm.moves_applied << " moves, " << warm.checks
            << " checks)  [" << total.seconds() << " s]\n";

  simt::Device device(simt::gtx680_cuda());
  TwoOptGpuTiled engine(device);
  std::cout << "polishing with the tiled kernel (tile " << engine.tile()
            << ", " << engine.launches_for(n) << " launches/pass, budget "
            << seconds << " s)...\n";
  LocalSearchOptions opts;
  opts.time_limit_seconds = seconds;
  LocalSearchStats polish = local_search(engine, inst, tour, opts);
  std::cout << "after "
            << (polish.reached_local_minimum ? "reaching the local minimum"
                                             : "the time budget")
            << ": " << tour.length(inst) << "  (" << polish.moves_applied
            << " exact moves over " << polish.passes << " passes)\n";

  simt::PerfModel model(device.spec());
  std::cout << "that polish would have cost a real GTX 680 ~"
            << model.price(device.counters().snapshot()).total_us() / 1e3
            << " ms\n";

  std::string stem = "/tmp/" + inst.name();
  save_tsplib_tour(stem + ".tour", tour, inst.name(), tour.length(inst));
  SvgStyle style;
  style.point_radius = 0.0;  // too many cities for dots
  save_svg(stem + ".svg", inst, &tour, style);
  std::cout << "wrote " << stem << ".tour and " << stem << ".svg  ["
            << total.seconds() << " s total]\n";
  return 0;
}
