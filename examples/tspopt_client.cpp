// tspopt_client — command-line client for tspoptd.
//
//   $ ./examples/tspopt_client submit --catalog kroA200
//         --engine gpu-multi --time 0.5 --wait
//   $ ./examples/tspopt_client status --id 3
//   $ ./examples/tspopt_client result --id 3
//   $ ./examples/tspopt_client cancel --id 3
//   $ ./examples/tspopt_client forget --id 3
//   $ ./examples/tspopt_client stats
//   $ ./examples/tspopt_client engines
//
// Every invocation prints the daemon's JSON response on stdout (one
// line, pipe it to jq/python for pretty-printing) and exits 0 when the
// response carries "ok": true, 1 when the daemon rejected the request
// (queue full, unknown id, invalid spec), 2 on usage/connection errors,
// 3 when a request timed out against a stalled daemon (--io-timeout /
// --connect-timeout bound every socket operation).
// `submit --wait` polls until the job reaches a terminal state and then
// prints the `result` response instead of the submission receipt.
// `submit --deadline N` keeps retrying capacity rejections and transport
// failures (jittered exponential backoff, honoring the daemon's
// retry_after_ms hint) for up to N seconds; an idempotency key
// (--idempotency-key, auto-generated under --deadline) makes those
// retries dedup server-side instead of double-submitting.
// `submit --batch <manifest>` submits a whole JSON-lines manifest of job
// specs as one burst (each line a tspopt.job object; jobs default to
// batchable so the daemon's micro-batcher can coalesce them) and prints
// one response carrying every job's id. All jobs share one idempotency
// key prefix (--idempotency-key or minted), keyed "<prefix>-<line>", so
// re-running the same manifest dedups job-for-job.
//
// Every submit carries a distributed trace id (--trace-id to supply one,
// otherwise minted), printed to stderr as `trace <id>` — grep the
// daemon's TSPOPT_LOG/TSPOPT_TRACE output for that id to see the job's
// queue/lease/run spans; a timeout message names it too, so a lost
// response is still findable server-side.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <random>
#include <string>

#include "common/cli.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "tsp/generator.hpp"

int main(int argc, char** argv) {
  using namespace tspopt;

  CliParser cli("tspopt_client", "client for the tspoptd solve daemon");
  cli.add_positional("verb", "submit | status | result | cancel | forget | "
                             "stats | engines | ping");
  cli.add_option("host", "daemon host", "127.0.0.1");
  cli.add_option("port", "daemon port", "7878");
  cli.add_option("id", "job id (status/result/cancel/forget)");
  cli.add_option("catalog", "catalog instance name to solve");
  cli.add_option("random", "solve a random uniform instance of this size");
  cli.add_option("engine", "engine name (see the engines verb)",
                 "cpu-parallel");
  cli.add_option("time", "ILS time budget, seconds", "1.0");
  cli.add_option("iterations", "ILS iteration cap (-1 = by time)", "-1");
  cli.add_option("priority", "0 (most urgent) .. 9", "1");
  cli.add_option("deadline-ms", "wall deadline from acceptance (-1 = none)",
                 "-1");
  cli.add_option("seed", "ILS seed", "1");
  cli.add_option("devices", "device-lease size for gpu engines", "1");
  cli.add_option("k", "neighbor-list size for the pruned engines "
                      "(0 = engine default)", "0");
  cli.add_flag("batchable",
               "opt this job into the daemon's micro-batcher (batch-simd / "
               "batch-gpu engine classes only)");
  cli.add_option("batch",
                 "submit only: JSON-lines manifest of job specs, submitted "
                 "as one burst for the daemon's micro-batcher (each line is "
                 "a tspopt.job object; schema fields optional; jobs default "
                 "to batchable)");
  cli.add_flag("wait", "submit only: poll to completion, print the result");
  cli.add_option("wait-seconds", "--wait poll budget", "30");
  cli.add_option("deadline",
                 "submit only: total retry budget, seconds (0 = one try)",
                 "0");
  cli.add_option("idempotency-key",
                 "dedup token for submit retries (auto-generated when "
                 "--deadline > 0)");
  cli.add_option("trace-id",
                 "distributed trace id to stamp on the submit (<= 64 "
                 "printable chars; minted when omitted)");
  cli.add_option("io-timeout", "per-request I/O timeout, ms", "30000");
  cli.add_option("connect-timeout", "connect timeout, ms", "5000");
  if (!cli.parse(argc, argv) || !cli.positional(0).has_value()) {
    std::cerr << (cli.error().empty() ? "missing verb" : cli.error()) << "\n"
              << cli.usage();
    return 2;
  }
  const std::string verb = *cli.positional(0);
  obs::Tracer::global().set_process_name("tspopt_client");

  // Lifted out of the try so the timeout handler can name the trace of a
  // submit whose response never arrived.
  std::string trace_id;
  try {
    serve::ClientOptions client_options;
    client_options.io_timeout_ms = cli.get_double("io-timeout", 30000.0);
    client_options.connect_timeout_ms =
        cli.get_double("connect-timeout", 5000.0);
    serve::Client client(cli.get("host"),
                         static_cast<std::uint16_t>(cli.get_int("port", 7878)),
                         client_options);

    obs::JsonValue response;
    if (verb == "submit" && cli.has("batch")) {
      // Manifest submit: one burst of specs for the daemon's micro-batcher.
      // Every line is a tspopt.job wire object (the schema fields may be
      // omitted — they are injected here); jobs that do not say otherwise
      // are marked batchable, and every job's idempotency key shares one
      // prefix so a whole-burst retry dedups job-for-job.
      std::ifstream manifest(cli.get("batch"));
      if (!manifest) {
        std::cerr << "tspopt_client: cannot open manifest "
                  << cli.get("batch") << "\n";
        return 2;
      }
      std::string prefix = cli.get("idempotency-key", "");
      if (prefix.empty()) prefix = "batch-" + obs::new_trace_id();
      double deadline_seconds = cli.get_double("deadline", 0.0);

      obs::JsonWriter out;
      out.begin_object();
      out.key("idempotency_prefix").value(prefix);
      out.key("jobs").begin_array();
      bool all_ok = true;
      std::size_t index = 0;
      std::string line;
      while (std::getline(manifest, line)) {
        if (line.empty() || line[0] == '#') continue;
        obs::JsonValue parsed = obs::json_parse(line);
        TSPOPT_CHECK_MSG(parsed.is_object(),
                         "manifest line " << index << " is not an object");
        if (parsed.find("schema") == nullptr) {
          obs::JsonValue schema;
          schema.kind = obs::JsonValue::Kind::kString;
          schema.string = "tspopt.job";
          parsed.object.emplace_back("schema", std::move(schema));
        }
        if (parsed.find("schema_version") == nullptr) {
          obs::JsonValue version;
          version.kind = obs::JsonValue::Kind::kNumber;
          version.number = 1;
          parsed.object.emplace_back("schema_version", std::move(version));
        }
        bool line_sets_batchable = parsed.find("batchable") != nullptr;
        serve::JobSpec spec = serve::job_spec_from_json(parsed);
        if (!line_sets_batchable) spec.batchable = true;
        if (spec.idempotency_key.empty()) {
          spec.idempotency_key = prefix + "-" + std::to_string(index);
        }
        obs::JsonValue reply = deadline_seconds > 0.0
                                   ? client.submit_with_retry(
                                         spec, deadline_seconds)
                                   : client.submit(spec);
        const obs::JsonValue* ok = reply.find("ok");
        all_ok = all_ok && ok != nullptr && ok->boolean;
        out.begin_object();
        out.key("index").value(static_cast<std::uint64_t>(index));
        const obs::JsonValue* id = reply.find("id");
        if (id != nullptr) {
          out.key("id").value(static_cast<std::uint64_t>(id->number));
        }
        out.key("ok").value(ok != nullptr && ok->boolean);
        if (const obs::JsonValue* error = reply.find("error")) {
          out.key("error").value(error->string);
        }
        out.key("trace_id").value(client.last_trace_id());
        out.end_object();
        ++index;
      }
      out.end_array();
      out.key("submitted").value(static_cast<std::uint64_t>(index));
      out.key("ok").value(all_ok);
      out.end_object();
      std::cout << out.str() << std::endl;
      return all_ok ? 0 : 1;
    }
    if (verb == "submit") {
      serve::JobSpec spec;
      if (cli.has("random")) {
        auto n = static_cast<std::int32_t>(cli.get_int("random", 100));
        Instance instance = generate_uniform(
            "random" + std::to_string(n), n, cli.get_int("seed", 1));
        spec.instance_name = instance.name();
        spec.points.assign(instance.points().begin(),
                           instance.points().end());
      } else {
        spec.catalog = cli.get("catalog", "berlin52");
      }
      spec.engine = cli.get("engine");
      spec.time_limit_seconds = cli.get_double("time", 1.0);
      spec.max_iterations = cli.get_int("iterations", -1);
      spec.priority = static_cast<std::int32_t>(cli.get_int("priority", 1));
      spec.deadline_ms = cli.get_double("deadline-ms", -1.0);
      spec.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
      spec.devices = static_cast<std::int32_t>(cli.get_int("devices", 1));
      spec.k = static_cast<std::int32_t>(cli.get_int("k", 0));
      spec.batchable = cli.has("batchable");
      spec.idempotency_key = cli.get("idempotency-key", "");
      // Mint the trace id here (not in Client::submit) so the timeout
      // handler below can name it even when the request never came back.
      spec.trace_id =
          cli.has("trace-id") ? cli.get("trace-id") : obs::new_trace_id();
      trace_id = spec.trace_id;
      std::cerr << "tspopt_client: trace " << trace_id << "\n";

      double deadline_seconds = cli.get_double("deadline", 0.0);
      if (deadline_seconds > 0.0) {
        // Retried submits must dedup server-side: without a key, a retry
        // after an ambiguous failure could double-run the job.
        if (spec.idempotency_key.empty()) {
          std::random_device rd;
          spec.idempotency_key = "cli-" + std::to_string(rd()) + "-" +
                                 std::to_string(rd());
        }
        response = client.submit_with_retry(spec, deadline_seconds);
      } else {
        response = client.submit(spec);
      }
      const obs::JsonValue* ok = response.find("ok");
      if (cli.has("wait") && ok != nullptr && ok->boolean) {
        auto id = static_cast<std::uint64_t>(response.at("id").number);
        client.wait(id, cli.get_double("wait-seconds", 30.0));
        response = client.result(id);
      }
    } else if (verb == "status" || verb == "result" || verb == "cancel" ||
               verb == "forget") {
      if (!cli.has("id")) {
        std::cerr << verb << " needs --id\n";
        return 2;
      }
      auto id = static_cast<std::uint64_t>(cli.get_int("id", 0));
      response = verb == "status"   ? client.status(id)
                 : verb == "result" ? client.result(id)
                 : verb == "cancel" ? client.cancel(id)
                                    : client.forget(id);
    } else if (verb == "stats") {
      response = client.stats();
    } else if (verb == "engines") {
      response = client.engines();
    } else if (verb == "ping") {
      response = client.request("{\"verb\":\"ping\"}");
    } else {
      std::cerr << "unknown verb \"" << verb << "\"\n" << cli.usage();
      return 2;
    }

    // Round-trip the parsed value back out so the output is exactly one
    // canonical line regardless of daemon formatting.
    obs::JsonWriter w;
    obs::write_json_value(w, response);
    std::cout << w.str() << std::endl;

    const obs::JsonValue* ok = response.find("ok");
    return ok != nullptr && ok->boolean ? 0 : 1;
  } catch (const serve::ClientTimeout& e) {
    std::cerr << "tspopt_client: " << e.what();
    if (!trace_id.empty()) {
      // The submit may still have landed server-side; the trace id is how
      // the operator finds out (daemon JSONL / trace export carry it).
      std::cerr << " (trace " << trace_id << ")";
    }
    std::cerr << "\n";
    return 3;
  } catch (const CheckError& e) {
    std::cerr << "tspopt_client: " << e.what() << "\n";
    return 2;
  }
}
