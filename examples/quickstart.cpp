// Quickstart: the smallest end-to-end use of the library.
//
// Loads the classic berlin52 instance, builds a greedy starting tour,
// runs the GPU-style 2-opt local search to its local minimum, and prints
// what happened — including the modeled GTX 680 timing for the work the
// simulated device performed.
//
//   $ ./examples/quickstart
#include <iostream>

#include "simt/device.hpp"
#include "simt/perf_model.hpp"
#include "solver/constructive.hpp"
#include "solver/local_search.hpp"
#include "solver/twoopt_gpu.hpp"
#include "tsp/catalog.hpp"

int main() {
  using namespace tspopt;

  // 1. An instance: berlin52 ships with the library (optimum: 7542).
  Instance instance = berlin52();
  std::cout << "instance: " << instance.name() << " (" << instance.n()
            << " cities)\n";

  // 2. A starting tour from the Multiple Fragment heuristic.
  Tour tour = multiple_fragment(instance);
  std::cout << "greedy initial tour: " << tour.length(instance) << "\n";

  // 3. A simulated GPU and the paper's shared-memory 2-opt kernel.
  simt::Device device(simt::gtx680_cuda());
  TwoOptGpuSmall engine(device);

  // 4. Descend to the 2-opt local minimum.
  LocalSearchStats stats = local_search(engine, instance, tour);
  std::cout << "2-opt local minimum: " << tour.length(instance) << "  ("
            << stats.moves_applied << " moves, " << stats.checks
            << " pair checks, " << stats.passes << " kernel launches)\n";

  // 5. What would that work have cost on the paper's GTX 680?
  simt::PerfModel model(device.spec());
  auto timing = model.price(device.counters().snapshot());
  std::cout << "modeled GTX 680 time: kernel " << timing.kernel_us
            << " us + H2D " << timing.h2d_us << " us + D2H " << timing.d2h_us
            << " us = " << timing.total_us() / 1000.0 << " ms\n"
            << "(distance to optimum 7542: "
            << tour.length(instance) - kBerlin52Optimum << ")\n";
  return 0;
}
