#!/usr/bin/env bash
# Continuous-integration driver.
#
# Pass 1: Release build + full tier-1 test suite.
# Pass 2: AddressSanitizer build of the fault-injection and checkpoint
#         suites — the code paths that juggle threads, retries, partial
#         results, and binary (de)serialization, where memory bugs hide.
# Pass 3: Observability smoke — run a small traced ILS with
#         TSPOPT_TRACE/TSPOPT_REPORT set and validate that both emitted
#         files are well-formed JSON.
#
# Usage: scripts/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== Pass 1: Release build + full test suite =="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${PREFIX}-release" -j "${JOBS}"
ctest --test-dir "${PREFIX}-release" --output-on-failure -j "${JOBS}"

echo
echo "== Pass 2: AddressSanitizer build + fault/checkpoint/fuzz suites =="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTSPOPT_SANITIZE=address >/dev/null
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target test_fault test_checkpoint test_fuzz
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
      -R 'Fault|Checkpoint|Fuzz'

echo
echo "== Pass 3: Observability smoke (trace + run report) =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "${OBS_TMP}"' EXIT
TSPOPT_TRACE="${OBS_TMP}/trace.json" TSPOPT_REPORT="${OBS_TMP}/report.json" \
    "${PREFIX}-release/examples/ils_solver" 200 0.2 1 >/dev/null
for f in trace report; do
  python3 -m json.tool "${OBS_TMP}/${f}.json" >/dev/null \
      || { echo "invalid ${f} JSON"; exit 1; }
done
echo "trace + report JSON valid."

echo
echo "CI passed."
