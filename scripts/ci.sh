#!/usr/bin/env bash
# Continuous-integration driver.
#
# Pass 1: Release build + full tier-1 test suite.
# Pass 2: AddressSanitizer build of the fault-injection and checkpoint
#         suites — the code paths that juggle threads, retries, partial
#         results, and binary (de)serialization, where memory bugs hide.
#
# Usage: scripts/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== Pass 1: Release build + full test suite =="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${PREFIX}-release" -j "${JOBS}"
ctest --test-dir "${PREFIX}-release" --output-on-failure -j "${JOBS}"

echo
echo "== Pass 2: AddressSanitizer build + fault/checkpoint/fuzz suites =="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTSPOPT_SANITIZE=address >/dev/null
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target test_fault test_checkpoint test_fuzz
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
      -R 'Fault|Checkpoint|Fuzz'

echo
echo "CI passed."
