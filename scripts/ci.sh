#!/usr/bin/env bash
# Continuous-integration driver.
#
# Pass 1: Release build + full tier-1 test suite.
# Pass 2: AddressSanitizer build of the fault-injection and checkpoint
#         suites — the code paths that juggle threads, retries, partial
#         results, and binary (de)serialization, where memory bugs hide.
# Pass 3: Observability smoke — run a small traced ILS with
#         TSPOPT_TRACE/TSPOPT_REPORT set and validate that both emitted
#         files are well-formed JSON.
# Pass 4: SIMD dispatch matrix — the engine-equivalence suite under
#         TSPOPT_SIMD=scalar and TSPOPT_SIMD=avx2 (the AVX2 leg skips
#         cleanly on hosts without the instructions), then a bench_engines
#         smoke that emits a BENCH_engines.json artifact.
# Pass 5: Benchmark-regression gate — bench_report smoke run diffed
#         against the committed BENCH_*.json baselines (exact metrics
#         gated hard; throughput gated at 15% unless the environment
#         fingerprint differs), plus a self-test that a synthetic 20%
#         throughput regression is caught.
# Pass 6: Solve-service end to end — start tspoptd on an ephemeral port,
#         submit a job with tspopt_client and poll it to completion,
#         assert the serve.* series appear in the Prometheus exposition
#         and the full job lifecycle in the JSONL log, then SIGTERM the
#         daemon and require a clean drain (exit 143).
# Pass 7: Durable serve plane — start tspoptd with a job journal, submit
#         a long job, kill -9 the daemon mid-run, restart it into the
#         same journal directory and require the job to resume and
#         finish (idempotent resubmit dedupes to the same id, journal
#         counters in the stats verb, SIGTERM drain still exits 143);
#         then the serve/journal/recovery suites under ASan and TSan.
# Pass 8: Admin plane + distributed trace — start tspoptd with
#         --admin-port and TSPOPT_TRACE, probe /healthz /readyz /metrics
#         /statusz /tracez (asserting the tspopt_serve_* series and the
#         job-phase breakdown), submit a traced job and require the
#         client-minted trace id in the daemon JSONL, /tracez, and BOTH
#         Chrome trace exports (which must merge into one multi-process
#         timeline), then SIGTERM with a job in flight and require
#         /readyz to answer 503 "draining" until the drain exits 143.
# Pass 9: Candidate-list scaling smoke — generate an n=100k instance and
#         run the pruned engines through one ILS iteration each
#         (cpu-simd-pruned under the TSPOPT_SIMD matrix, gpu-pruned on
#         the SIMT simulator), asserting the twoopt.pairs_vectorized and
#         pruned.rows_skipped_dlb counters are nonzero in each emitted
#         run report — the proof the vector kernels and don't-look bits
#         actually engaged at scale.
# Pass 10: Sampling profiler — capture a span-attributed CPU profile
#         during an n=10k cpu-simd-pruned ILS run and assert the folded
#         export is non-empty, the run report carries the schema-v3
#         profile section, >= 90% of samples are span-attributed,
#         engine.pass has samples and its profile share agrees with its
#         trace-duration share within 10 points; probe /profilez on a
#         live tspoptd (200 with a collapsed body, then SIGTERM during a
#         capture must still drain to exit 143); run the Profiler and
#         Profilez suites under ASan and TSan; finally the overhead
#         gate: the same bench_report ILS benchmark with and without
#         TSPOPT_PROFILE at the default 97 Hz must agree within 2%
#         (exact metrics must match bit-for-bit — sampling must not
#         perturb the search).
# Pass 11: Micro-batcher end to end — start tspoptd with --max-batch,
#         burst 32 identical-shape jobs at it via `tspopt_client submit
#         --batch <manifest>`, require the burst to coalesce (serve.batch
#         spans in the trace export, batch lifecycle events in the JSONL
#         log, nonzero batch occupancy in /statusz, batch membership in
#         /tracez), require a batched job's result to equal the same spec
#         run solo, then the bench_serve gate: a smoke run (burst
#         equivalence, modeled >=3x batched speedup, and population-vs-
#         single-start are all asserted inside the binary) diffed against
#         the committed BENCH_serve.json baseline.
#
# Usage: scripts/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== Pass 1: Release build + full test suite =="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${PREFIX}-release" -j "${JOBS}"
ctest --test-dir "${PREFIX}-release" --output-on-failure -j "${JOBS}"

echo
echo "== Pass 2: AddressSanitizer build + fault/checkpoint/fuzz suites =="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTSPOPT_SANITIZE=address >/dev/null
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target test_fault test_checkpoint test_fuzz
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
      -R 'Fault|Checkpoint|Fuzz'

echo
echo "== Pass 3: Observability smoke (trace + run report) =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "${OBS_TMP}"' EXIT
TSPOPT_TRACE="${OBS_TMP}/trace.json" TSPOPT_REPORT="${OBS_TMP}/report.json" \
    "${PREFIX}-release/examples/ils_solver" 200 0.2 1 >/dev/null
for f in trace report; do
  python3 -m json.tool "${OBS_TMP}/${f}.json" >/dev/null \
      || { echo "invalid ${f} JSON"; exit 1; }
done
echo "trace + report JSON valid."

echo
echo "== Pass 4: SIMD dispatch matrix + bench artifact =="
# Every dispatch level must produce bit-identical engine results. The
# equivalence binaries re-run with the level pinned via TSPOPT_SIMD; an
# override naming an unsupported level is a hard error by design, so the
# avx2 leg only runs where the CPU reports the instructions.
for level in scalar avx2; do
  if [ "${level}" = avx2 ] && \
     ! grep -q -w avx2 /proc/cpuinfo 2>/dev/null; then
    echo "TSPOPT_SIMD=${level}: CPU lacks AVX2, skipping."
    continue
  fi
  echo "TSPOPT_SIMD=${level}: equivalence suites"
  TSPOPT_SIMD="${level}" "${PREFIX}-release/tests/test_simd" \
      --gtest_brief=1
  TSPOPT_SIMD="${level}" "${PREFIX}-release/tests/test_engines" \
      --gtest_brief=1
done

BENCH_OUT="${PREFIX}-release/BENCH_engines.json"
"${PREFIX}-release/bench/bench_engines" \
    --benchmark_filter='BM_SequentialPass/1000|BM_SimdPass/1000' \
    --benchmark_min_time=0.05 \
    --benchmark_format=json --benchmark_out="${BENCH_OUT}" >/dev/null
python3 -m json.tool "${BENCH_OUT}" >/dev/null \
    || { echo "invalid bench JSON"; exit 1; }
echo "bench artifact: ${BENCH_OUT}"

echo
echo "== Pass 5: benchmark-regression gate =="
BENCH_DIR="${OBS_TMP}/bench"
mkdir -p "${BENCH_DIR}"
"${PREFIX}-release/bench/bench_report" --smoke --out-dir "${BENCH_DIR}"
# 25% here, not bench_compare's 15% default: mid-CI the box runs the
# bench cache-cold right after the sanitizer suites, and the shared
# 1-core container's throughput swings ~25% between that state and the
# standalone runs the committed baselines come from. Exact-metric gates
# (best deltas, checks) are unaffected.
for kind in solver engines; do
  python3 scripts/bench_compare.py --threshold 0.25 \
      "BENCH_${kind}.json" "${BENCH_DIR}/BENCH_${kind}.json"
done
# The gate must actually gate: a synthetic 2x throughput regression of
# the fresh report against itself has matching fingerprints and must fail.
python3 - "${BENCH_DIR}" <<'EOF'
import json, sys
d = sys.argv[1]
r = json.load(open(f"{d}/BENCH_solver.json"))
for b in r["benchmarks"]:
    for k in list(b["metrics"]):
        if k.endswith("_per_sec"):
            b["metrics"][k] *= 0.5
json.dump(r, open(f"{d}/BENCH_solver_regressed.json", "w"))
EOF
if python3 scripts/bench_compare.py --threshold 0.25 \
    "${BENCH_DIR}/BENCH_solver.json" \
    "${BENCH_DIR}/BENCH_solver_regressed.json" >/dev/null; then
  echo "bench_compare failed to flag a 2x regression"; exit 1
fi
echo "regression gate: baselines comparable, synthetic regression caught."

echo
echo "== Pass 6: solve-service end to end (tspoptd + tspopt_client) =="
SERVE_TMP="${OBS_TMP}/serve"
mkdir -p "${SERVE_TMP}"
TSPOPT_LOG="info,${SERVE_TMP}/events.jsonl" \
TSPOPT_PROM="${SERVE_TMP}/metrics.prom" \
    "${PREFIX}-release/examples/tspoptd" \
    --port 0 --port-file "${SERVE_TMP}/port" \
    --devices 2 --workers 2 --queue 8 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -s "${SERVE_TMP}/port" ] && break
  kill -0 "${DAEMON_PID}" 2>/dev/null || { echo "tspoptd died"; exit 1; }
  sleep 0.1
done
[ -s "${SERVE_TMP}/port" ] || { echo "tspoptd never bound a port"; exit 1; }
PORT="$(cat "${SERVE_TMP}/port")"
echo "tspoptd up on port ${PORT}"

"${PREFIX}-release/examples/tspopt_client" ping --port "${PORT}" >/dev/null
RESULT="$("${PREFIX}-release/examples/tspopt_client" submit \
    --port "${PORT}" --catalog kroA200 --engine gpu-multi --devices 2 \
    --time 0.3 --wait)"
python3 - "${RESULT}" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"], r
assert r["job"]["state"] == "finished", r["job"]
assert len(r["result"]["order"]) == 200, len(r["result"]["order"])
assert r["result"]["best_length"] > 0
print(f"job finished: best {r['result']['best_length']} "
      f"in {r['result']['wall_seconds']:.3f}s")
EOF

# SIGTERM must drain (no live jobs here, but the path is the same) and
# exit 143; the flush hooks leave the telemetry files complete.
kill -TERM "${DAEMON_PID}"
DAEMON_RC=0
wait "${DAEMON_PID}" || DAEMON_RC=$?
[ "${DAEMON_RC}" -eq 143 ] \
    || { echo "tspoptd exit ${DAEMON_RC}, expected 143"; exit 1; }

for series in serve_queue_depth serve_active_jobs serve_jobs_accepted \
              serve_jobs_finished serve_job_wait_us serve_job_run_us; do
  grep -q "tspopt_${series}" "${SERVE_TMP}/metrics.prom" \
      || { echo "missing Prometheus series tspopt_${series}"; exit 1; }
done
for event in job.accepted job.started job.finished daemon.start daemon.stop; do
  grep -q "\"event\":\"${event}\"" "${SERVE_TMP}/events.jsonl" \
      || { echo "missing JSONL event ${event}"; exit 1; }
done
python3 - "${SERVE_TMP}/events.jsonl" <<'EOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
print(f"serve telemetry: {len(lines)} JSONL events, all parseable")
EOF
echo "solve service: submit -> finish -> SIGTERM drain all verified."

echo
echo "== Pass 7: durable serve plane (kill -9 -> restart recovery) =="
RECOVER_TMP="${OBS_TMP}/recover"
JOURNAL="${RECOVER_TMP}/journal"
mkdir -p "${RECOVER_TMP}"

"${PREFIX}-release/examples/tspoptd" \
    --port 0 --port-file "${RECOVER_TMP}/port1" \
    --devices 1 --workers 1 --journal-dir "${JOURNAL}" \
    --checkpoint-every 4 > "${RECOVER_TMP}/daemon1.log" &
VICTIM_PID=$!
for _ in $(seq 1 100); do
  [ -s "${RECOVER_TMP}/port1" ] && break
  kill -0 "${VICTIM_PID}" 2>/dev/null || { echo "tspoptd died"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${RECOVER_TMP}/port1")"

# A long CPU job (fixed seed + iteration budget, so the resumed run is
# reproducible) that will still be mid-search when the daemon dies.
SUBMIT="$("${PREFIX}-release/examples/tspopt_client" submit \
    --port "${PORT}" --catalog kroA200 --engine cpu-sequential \
    --iterations 20000 --time 300 --seed 11 \
    --idempotency-key ci-victim)"
JOB_ID="$(python3 -c 'import json,sys; r=json.loads(sys.argv[1]); \
assert r["ok"], r; print(r["id"])' "${SUBMIT}")"

# Kill only once the job has a resumable checkpoint on disk.
for _ in $(seq 1 200); do
  [ -e "${JOURNAL}/spool/job-${JOB_ID}.ckpt" ] && break
  sleep 0.05
done
[ -e "${JOURNAL}/spool/job-${JOB_ID}.ckpt" ] \
    || { echo "no checkpoint for job ${JOB_ID}"; exit 1; }
kill -9 "${VICTIM_PID}"
wait "${VICTIM_PID}" 2>/dev/null || true
echo "killed tspoptd (SIGKILL) with job ${JOB_ID} mid-run"

TSPOPT_PROM="${RECOVER_TMP}/metrics.prom" \
    "${PREFIX}-release/examples/tspoptd" \
    --port 0 --port-file "${RECOVER_TMP}/port2" \
    --devices 1 --workers 1 --journal-dir "${JOURNAL}" \
    --checkpoint-every 4 > "${RECOVER_TMP}/daemon2.log" &
RESTART_PID=$!
for _ in $(seq 1 100); do
  [ -s "${RECOVER_TMP}/port2" ] && break
  kill -0 "${RESTART_PID}" 2>/dev/null || { echo "restart died"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${RECOVER_TMP}/port2")"
grep -q "recovered" "${RECOVER_TMP}/daemon2.log" \
    || { echo "restart did not report journal recovery"; exit 1; }

# The idempotency key survived the crash: resubmitting dedupes to the
# recovered job instead of double-running it.
DUP="$("${PREFIX}-release/examples/tspopt_client" submit \
    --port "${PORT}" --catalog kroA200 --engine cpu-sequential \
    --iterations 20000 --time 300 --seed 11 \
    --idempotency-key ci-victim)"
python3 - "${DUP}" "${JOB_ID}" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"], r
assert r.get("deduped"), f"resubmit was not deduped: {r}"
assert r["id"] == int(sys.argv[2]), (r["id"], sys.argv[2])
EOF

# The recovered job resumes from its checkpoint and runs to completion.
for _ in $(seq 1 600); do
  STATE="$("${PREFIX}-release/examples/tspopt_client" status \
      --id "${JOB_ID}" --port "${PORT}" \
      | python3 -c 'import json,sys; \
print(json.load(sys.stdin).get("job",{}).get("state",""))')"
  [ "${STATE}" = "finished" ] && break
  [ "${STATE}" = "failed" ] && { echo "recovered job failed"; exit 1; }
  sleep 0.1
done
[ "${STATE}" = "finished" ] \
    || { echo "recovered job never finished (state ${STATE})"; exit 1; }
RESULT="$("${PREFIX}-release/examples/tspopt_client" result \
    --id "${JOB_ID}" --port "${PORT}")"
python3 - "${RESULT}" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"], r
assert len(r["result"]["order"]) == 200, len(r["result"]["order"])
assert r["result"]["best_length"] > 0
print(f"recovered job finished: best {r['result']['best_length']}")
EOF

# Journal health is part of the stats surface.
"${PREFIX}-release/examples/tspopt_client" stats --port "${PORT}" \
    | python3 -c 'import json,sys; s=json.load(sys.stdin); \
j=s["journal"]; assert j["appends"] > 0, j'

kill -TERM "${RESTART_PID}"
RESTART_RC=0
wait "${RESTART_PID}" || RESTART_RC=$?
[ "${RESTART_RC}" -eq 143 ] \
    || { echo "restarted tspoptd exit ${RESTART_RC}, expected 143"; exit 1; }
for series in serve_recovered_jobs serve_journal_appends \
              serve_journal_fsyncs; do
  grep -q "tspopt_${series}" "${RECOVER_TMP}/metrics.prom" \
      || { echo "missing Prometheus series tspopt_${series}"; exit 1; }
done
echo "kill -9 -> restart -> resume -> finish verified."

echo
echo "Pass 7b: serve/journal suites under sanitizers"
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target test_serve test_serve_stress test_journal \
               test_serve_recovery
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
      -R 'Serve|Journal'
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTSPOPT_SANITIZE=thread >/dev/null
cmake --build "${PREFIX}-tsan" -j "${JOBS}" \
      --target test_serve test_serve_stress test_journal \
               test_serve_recovery
# SurvivesInjectedDeviceFault needs gpu0 to reach its 3rd launch inside
# a 0.2s wall budget; TSan's slowdown makes that a coin flip, so the
# timing-sensitive case is excluded from this leg only.
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
      -R 'Serve|Journal' -E 'SurvivesInjectedDeviceFault'

echo
echo "== Pass 8: admin plane + distributed trace (tspoptd --admin-port) =="
ADMIN_TMP="${OBS_TMP}/admin"
mkdir -p "${ADMIN_TMP}"
TSPOPT_LOG="info,${ADMIN_TMP}/events.jsonl" \
TSPOPT_TRACE="${ADMIN_TMP}/daemon-trace.json" \
    "${PREFIX}-release/examples/tspoptd" \
    --port 0 --port-file "${ADMIN_TMP}/port" \
    --admin-port 0 --admin-port-file "${ADMIN_TMP}/admin-port" \
    --devices 2 --workers 2 > "${ADMIN_TMP}/daemon.log" &
ADMIN_PID=$!
for _ in $(seq 1 100); do
  [ -s "${ADMIN_TMP}/port" ] && [ -s "${ADMIN_TMP}/admin-port" ] && break
  kill -0 "${ADMIN_PID}" 2>/dev/null || { echo "tspoptd died"; exit 1; }
  sleep 0.1
done
[ -s "${ADMIN_TMP}/admin-port" ] \
    || { echo "tspoptd never bound an admin port"; exit 1; }
PORT="$(cat "${ADMIN_TMP}/port")"
ADMIN_PORT="$(cat "${ADMIN_TMP}/admin-port")"
echo "tspoptd up: serve port ${PORT}, admin port ${ADMIN_PORT}"

python3 - "${ADMIN_PORT}" <<'EOF'
import http.client, json, sys
port = int(sys.argv[1])
def get(path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
    conn.request("GET", path)
    r = conn.getresponse()
    return r.status, r.getheader("Content-Type", ""), r.read().decode()

status, _, body = get("/healthz")
assert status == 200 and body == "ok\n", (status, body)
status, _, body = get("/readyz")
assert status == 200, (status, body)
status, ctype, body = get("/metrics")
assert status == 200 and "version=0.0.4" in ctype, (status, ctype)
for series in ("tspopt_serve_queue_depth", "tspopt_serve_queue_oldest_age_ms",
               "tspopt_serve_job_phase_us", "tspopt_run_info"):
    assert series in body, f"missing Prometheus series {series}"
status, _, body = get("/statusz")
s = json.loads(body)
assert s["ready"] and s["run_id"], s
assert s["stats"]["workers"] == 2, s["stats"]
status, _, _ = get("/nope")
assert status == 404, status
print("admin endpoints: /healthz /readyz /metrics /statusz healthy, 404 clean")
EOF

# A traced job: the client mints (here: pins) the trace id, prints it on
# stderr, and the daemon must carry it end to end.
TRACE_ID="c0ffee0123456789"
RESULT="$(TSPOPT_TRACE="${ADMIN_TMP}/client-trace.json" \
    "${PREFIX}-release/examples/tspopt_client" submit \
    --port "${PORT}" --catalog kroA200 --engine cpu-parallel \
    --time 0.2 --trace-id "${TRACE_ID}" --wait \
    2> "${ADMIN_TMP}/client.err")"
grep -q "trace ${TRACE_ID}" "${ADMIN_TMP}/client.err" \
    || { echo "client did not print its trace id"; exit 1; }
python3 - "${RESULT}" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"], r
assert r["job"]["state"] == "finished", r["job"]
EOF

# /tracez shows the settled job's phase breakdown under that trace id
# (settling is asynchronous after the terminal state, so poll briefly).
python3 - "${ADMIN_PORT}" "${TRACE_ID}" <<'EOF'
import http.client, json, sys, time
port, trace_id = int(sys.argv[1]), sys.argv[2]
deadline = time.monotonic() + 10.0
while True:
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
    conn.request("GET", "/tracez")
    t = json.loads(conn.getresponse().read().decode())
    jobs = [s for s in t["slowest"] if s.get("trace_id") == trace_id]
    if jobs:
        break
    assert time.monotonic() < deadline, f"trace {trace_id} never in /tracez: {t}"
    time.sleep(0.05)
j = jobs[0]
assert j["state"] == "finished", j
assert j["run_ms"] > 0 and j["total_ms"] >= j["run_ms"], j
print(f"/tracez: job {j['id']} trace {trace_id} wait {j['wait_ms']:.2f}ms "
      f"lease {j['lease_ms']:.2f}ms run {j['run_ms']:.2f}ms "
      f"settle {j['settle_ms']:.2f}ms")
EOF

# Drain cycle: with a job in flight, SIGTERM must flip /readyz to 503
# "draining" (the admin listener stays up through the drain) and still
# exit 143 once the job completes.
"${PREFIX}-release/examples/tspopt_client" submit \
    --port "${PORT}" --catalog kroA200 --engine cpu-sequential \
    --time 1.0 >/dev/null
kill -TERM "${ADMIN_PID}"
python3 - "${ADMIN_PORT}" <<'EOF'
import http.client, sys, time
port = int(sys.argv[1])
deadline = time.monotonic() + 10.0
while True:
    try:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=2)
        conn.request("GET", "/readyz")
        r = conn.getresponse()
        body = r.read().decode()
        if r.status == 503:
            assert "draining" in body, body
            print(f"/readyz during drain: 503 {body.strip()!r}")
            break
    except OSError:
        sys.exit("admin listener gone before 503 was observed")
    assert time.monotonic() < deadline, "never saw 503 during drain"
    time.sleep(0.02)
EOF
ADMIN_RC=0
wait "${ADMIN_PID}" || ADMIN_RC=$?
[ "${ADMIN_RC}" -eq 143 ] \
    || { echo "tspoptd exit ${ADMIN_RC}, expected 143"; exit 1; }

# The trace id is in the daemon's JSONL lifecycle events and in BOTH
# Chrome exports, which merge into one valid multi-process timeline.
grep -q "\"trace_id\":\"${TRACE_ID}\"" "${ADMIN_TMP}/events.jsonl" \
    || { echo "trace id missing from daemon JSONL"; exit 1; }
python3 - "${ADMIN_TMP}" "${TRACE_ID}" <<'EOF'
import json, sys
d, trace_id = sys.argv[1], sys.argv[2]
daemon = json.load(open(f"{d}/daemon-trace.json"))["traceEvents"]
client = json.load(open(f"{d}/client-trace.json"))["traceEvents"]
def traced(events):
    return [e for e in events
            if e.get("args", {}).get("trace_id") == trace_id]
assert traced(daemon), "trace id missing from daemon trace export"
assert traced(client), "trace id missing from client trace export"
names = {e["args"]["name"] for e in daemon + client
         if e.get("ph") == "M" and e.get("name") == "process_name"}
assert {"tspoptd", "tspopt_client"} <= names, names
merged = {"traceEvents": daemon + client}
pids = {e["pid"] for e in merged["traceEvents"] if e.get("ph") == "X"}
assert len(pids) >= 2, pids
json.dump(merged, open(f"{d}/merged-trace.json", "w"))
json.load(open(f"{d}/merged-trace.json"))  # round-trips as valid JSON
print(f"distributed trace: {len(traced(daemon))} daemon + "
      f"{len(traced(client))} client events share trace {trace_id}; "
      f"merged timeline spans {len(pids)} processes")
EOF
echo "admin plane + distributed trace verified."

echo
echo "== Pass 9: candidate-list engines at n=100k (pruned scaling smoke) =="
PRUNED_TMP="${OBS_TMP}/pruned"
mkdir -p "${PRUNED_TMP}"
# One ILS iteration per run: enough for the descent to apply moves (so
# don't-look bits skip settled rows from the second pass on) while
# keeping the 100k run to a couple of seconds. The report's metrics
# section must show the vector kernels and the DLB pruning both engaged.
check_pruned_report() {
  python3 - "$1" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
m = {i["name"]: i for i in r["metrics"]}
for name in ("twoopt.pairs_vectorized", "pruned.rows_skipped_dlb"):
    assert name in m, f"missing counter {name}: {sorted(m)}"
    v = m[name]["value"]
    assert v > 0, f"{name} = {v}, expected nonzero"
print(f"  {sys.argv[1].split('/')[-1]}: "
      f"pairs_vectorized={m['twoopt.pairs_vectorized']['value']:.0f} "
      f"rows_skipped_dlb={m['pruned.rows_skipped_dlb']['value']:.0f}")
EOF
}
for level in scalar avx2; do
  if [ "${level}" = avx2 ] && \
     ! grep -q -w avx2 /proc/cpuinfo 2>/dev/null; then
    echo "TSPOPT_SIMD=${level}: CPU lacks AVX2, skipping."
    continue
  fi
  echo "TSPOPT_SIMD=${level}: cpu-simd-pruned, n=100000, 1 ILS iteration"
  TSPOPT_SIMD="${level}" \
  TSPOPT_REPORT="${PRUNED_TMP}/report-simd-${level}.json" \
      "${PREFIX}-release/examples/ils_solver" 100000 2.0 1 \
      cpu-simd-pruned 1 >/dev/null
  check_pruned_report "${PRUNED_TMP}/report-simd-${level}.json"
done
echo "gpu-pruned, n=100000, 1 ILS iteration"
TSPOPT_REPORT="${PRUNED_TMP}/report-gpu.json" \
    "${PREFIX}-release/examples/ils_solver" 100000 2.0 1 \
    gpu-pruned 1 >/dev/null
check_pruned_report "${PRUNED_TMP}/report-gpu.json"
echo "pruned scaling smoke: n=100k ILS runs + counters verified."

echo
echo "== Pass 10: sampling profiler (span attribution + /profilez + overhead) =="
PROF_TMP="${OBS_TMP}/profile"
mkdir -p "${PROF_TMP}"

# (a) Span-attributed capture on the reference ILS run. iters=-1 runs to
# the 2s wall budget, so the profiler (default 97 Hz) collects ~200
# samples with engine.pass dominating — enough signal for the share
# comparison below to be meaningful.
echo "profiled ILS run: n=10000, cpu-simd-pruned, 2s budget"
TSPOPT_PROFILE="${PROF_TMP}/ils.folded" \
TSPOPT_TRACE="${PROF_TMP}/ils-trace.json" \
TSPOPT_REPORT="${PROF_TMP}/ils-report.json" \
    "${PREFIX}-release/examples/ils_solver" 10000 2.0 1 \
    cpu-simd-pruned -1 >/dev/null
python3 - "${PROF_TMP}" <<'EOF'
import json, sys
d = sys.argv[1]

# The collapsed export: non-empty, every line "<stack> <count>".
lines = [l for l in open(f"{d}/ils.folded").read().splitlines() if l]
assert lines, "collapsed profile is empty"
for l in lines:
    stack, _, count = l.rpartition(" ")
    assert stack and int(count) > 0, f"malformed collapsed line: {l!r}"

r = json.load(open(f"{d}/ils-report.json"))
assert r["schema_version"] == 4, r["schema_version"]
p = r["profile"]
assert p["samples"] > 0, p
attributed = p["attributed"] / p["samples"]
assert attributed >= 0.90, f"only {attributed:.1%} of samples span-attributed"
table = {row["span"]: row for row in p["attribution"]}
assert "engine.pass" in table and table["engine.pass"]["samples"] > 0, table

# Cross-check the profile against the trace: engine.pass's share of
# profiled CPU time must agree with its share of traced span time
# within 10 points, or the attribution is lying about where time went.
profile_share = table["engine.pass"]["samples"] / p["samples"]
events = json.load(open(f"{d}/ils-trace.json"))["traceEvents"]
span_us = sum(e.get("dur", 0) for e in events
              if e.get("ph") == "X" and e.get("name") == "engine.pass")
profiled_us = p["samples"] / p["hz"] * 1e6
trace_share = span_us / profiled_us
assert abs(profile_share - trace_share) <= 0.10, \
    f"engine.pass share: profile {profile_share:.3f} vs trace {trace_share:.3f}"
print(f"  {len(lines)} folded stacks, {p['samples']} samples "
      f"({p['dropped']} dropped), {attributed:.1%} attributed; "
      f"engine.pass share {profile_share:.3f} (trace {trace_share:.3f})")
EOF

# (b) /profilez on a live daemon: a capture during a running job returns
# a non-empty collapsed profile, and SIGTERM in the middle of a capture
# must still drain cleanly to exit 143.
TSPOPT_LOG="warn,${PROF_TMP}/events.jsonl" \
    "${PREFIX}-release/examples/tspoptd" \
    --port 0 --port-file "${PROF_TMP}/port" \
    --admin-port 0 --admin-port-file "${PROF_TMP}/admin-port" \
    --devices 2 --workers 2 > "${PROF_TMP}/daemon.log" &
PROF_PID=$!
for _ in $(seq 1 100); do
  [ -s "${PROF_TMP}/port" ] && [ -s "${PROF_TMP}/admin-port" ] && break
  kill -0 "${PROF_PID}" 2>/dev/null || { echo "tspoptd died"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${PROF_TMP}/port")"
ADMIN_PORT="$(cat "${PROF_TMP}/admin-port")"
"${PREFIX}-release/examples/tspopt_client" submit \
    --port "${PORT}" --catalog kroA200 --engine cpu-parallel \
    --time 3.0 >/dev/null
python3 - "${ADMIN_PORT}" <<'EOF'
import http.client, sys
port = int(sys.argv[1])
conn = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
conn.request("GET", "/profilez?seconds=1&hz=500")
r = conn.getresponse()
body = r.read().decode()
assert r.status == 200, (r.status, body)
lines = [l for l in body.splitlines() if l]
assert lines, "/profilez returned an empty profile during a running job"
for l in lines:
    stack, _, count = l.rpartition(" ")
    assert stack and int(count) > 0, f"malformed collapsed line: {l!r}"
print(f"  /profilez: {len(lines)} folded stacks from the live daemon")
EOF
# SIGTERM lands while this capture is still sampling.
python3 - "${ADMIN_PORT}" <<'EOF' &
import http.client, sys
try:
    conn = http.client.HTTPConnection("127.0.0.1", int(sys.argv[1]), timeout=15)
    conn.request("GET", "/profilez?seconds=5")
    conn.getresponse().read()
except OSError:
    pass  # the drain may cut the connection; only the exit code matters
EOF
CAPTURE_PID=$!
sleep 0.5
kill -TERM "${PROF_PID}"
PROF_RC=0
wait "${PROF_PID}" || PROF_RC=$?
[ "${PROF_RC}" -eq 143 ] \
    || { echo "tspoptd exit ${PROF_RC} with capture in flight, expected 143"; exit 1; }
wait "${CAPTURE_PID}" || true
echo "  SIGTERM during capture: drained to exit 143"

# (c) The profiler suites under both sanitizers. The signal handler,
# per-thread rings, and drain thread are exactly where ASan/TSan earn
# their keep.
cmake --build "${PREFIX}-asan" -j "${JOBS}" --target test_profiler test_admin
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
      -R 'Profiler|Profilez'
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target test_profiler test_admin
ctest --test-dir "${PREFIX}-tsan" --output-on-failure -j "${JOBS}" \
      -R 'Profiler|Profilez'

# (d) Overhead gate: the same stretched bench_report ILS benchmark with
# and without the profiler at the default 97 Hz, diffed by
# bench_compare at a 2% throughput threshold. Exact metrics (best
# length / improvements) must match bit-for-bit — sampling must not
# perturb the search. The shared CI box swings more than 2% on its own,
# so a failed attempt re-runs the whole pair (genuine overhead fails
# every attempt; noise does not repeat three times).
OVERHEAD_OK=0
for attempt in 1 2 3; do
  rm -rf "${PROF_TMP}/base" "${PROF_TMP}/prof"
  mkdir -p "${PROF_TMP}/base" "${PROF_TMP}/prof"
  "${PREFIX}-release/bench/bench_report" --only "ils/cpu-simd-pruned" \
      --ils-n 2000 --ils-iters 4000 --reps 5 \
      --out-dir "${PROF_TMP}/base" >/dev/null
  TSPOPT_PROFILE="${PROF_TMP}/prof/bench.folded" \
      "${PREFIX}-release/bench/bench_report" --only "ils/cpu-simd-pruned" \
      --ils-n 2000 --ils-iters 4000 --reps 5 \
      --out-dir "${PROF_TMP}/prof" >/dev/null
  [ -s "${PROF_TMP}/prof/bench.folded" ] \
      || { echo "profiled bench run wrote no folded profile"; exit 1; }
  if python3 scripts/bench_compare.py --threshold 0.02 --strict \
      "${PROF_TMP}/base/BENCH_solver.json" \
      "${PROF_TMP}/prof/BENCH_solver.json"; then
    OVERHEAD_OK=1
    break
  fi
  echo "overhead gate attempt ${attempt} tripped (box noise?); retrying"
done
[ "${OVERHEAD_OK}" -eq 1 ] \
    || { echo "profiler overhead exceeds 2% at 97 Hz"; exit 1; }
echo "sampling profiler: attribution, /profilez, sanitizers, overhead verified."

echo
echo "== Pass 11: micro-batcher end to end (burst -> serve.batch -> bench gate) =="
BATCH_TMP="${OBS_TMP}/batch"
mkdir -p "${BATCH_TMP}"

# One worker + a 250ms linger: the lead job waits for the rest of the
# burst, so the whole manifest coalesces into very few batches.
TSPOPT_LOG="info,${BATCH_TMP}/events.jsonl" \
TSPOPT_TRACE="${BATCH_TMP}/trace.json" \
    "${PREFIX}-release/examples/tspoptd" \
    --port 0 --port-file "${BATCH_TMP}/port" \
    --admin-port 0 --admin-port-file "${BATCH_TMP}/admin-port" \
    --devices 1 --workers 1 --queue 64 \
    --max-batch 32 --batch-wait-ms 250 > "${BATCH_TMP}/daemon.log" &
BATCH_PID=$!
for _ in $(seq 1 100); do
  [ -s "${BATCH_TMP}/port" ] && [ -s "${BATCH_TMP}/admin-port" ] && break
  kill -0 "${BATCH_PID}" 2>/dev/null || { echo "tspoptd died"; exit 1; }
  sleep 0.1
done
PORT="$(cat "${BATCH_TMP}/port")"
ADMIN_PORT="$(cat "${BATCH_TMP}/admin-port")"
echo "tspoptd up: serve port ${PORT}, admin port ${ADMIN_PORT}, max-batch 32"

# 32 identical-shape jobs (same instance + engine class + k, distinct
# seeds): exactly what the micro-batcher coalesces. Iteration-bounded so
# every result is deterministic.
python3 - > "${BATCH_TMP}/manifest.jsonl" <<'EOF'
import json
for seed in range(1, 33):
    print(json.dumps({"catalog": "berlin52", "engine": "gpu-small",
                      "time_limit_seconds": 30.0, "max_iterations": 4,
                      "seed": seed}))
EOF
BURST="$("${PREFIX}-release/examples/tspopt_client" submit \
    --port "${PORT}" --batch "${BATCH_TMP}/manifest.jsonl" \
    --idempotency-key ci-burst 2>/dev/null)"
mapfile -t JOB_IDS < <(python3 - "${BURST}" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"], r
assert r["submitted"] == 32, r["submitted"]
for j in r["jobs"]:
    assert j["ok"], j
    print(j["id"])
EOF
)
[ "${#JOB_IDS[@]}" -eq 32 ] || { echo "expected 32 job ids"; exit 1; }

# Every burst job finishes with a full berlin52 result; remember seed 1's
# answer for the solo comparison below.
BATCHED_BEST=""
for id in "${JOB_IDS[@]}"; do
  for _ in $(seq 1 600); do
    STATE="$("${PREFIX}-release/examples/tspopt_client" status \
        --id "${id}" --port "${PORT}" \
        | python3 -c 'import json,sys; \
print(json.load(sys.stdin).get("job",{}).get("state",""))')"
    [ "${STATE}" = "finished" ] && break
    [ "${STATE}" = "failed" ] && { echo "burst job ${id} failed"; exit 1; }
    sleep 0.05
  done
  [ "${STATE}" = "finished" ] \
      || { echo "burst job ${id} never finished (state ${STATE})"; exit 1; }
  BEST="$("${PREFIX}-release/examples/tspopt_client" result \
      --id "${id}" --port "${PORT}" | python3 -c 'import json,sys
r = json.load(sys.stdin)
assert r["ok"], r
assert len(r["result"]["order"]) == 52, len(r["result"]["order"])
assert r["result"]["best_length"] > 0
print(r["result"]["best_length"])')"
  [ -n "${BATCHED_BEST}" ] || BATCHED_BEST="${BEST}"
done
echo "all 32 burst jobs finished (seed-1 best ${BATCHED_BEST})"

# A batched job must answer exactly like the same spec run solo (the
# batch engines are bit-identical to their single-tour counterparts).
SOLO="$("${PREFIX}-release/examples/tspopt_client" submit \
    --port "${PORT}" --catalog berlin52 --engine gpu-small \
    --time 30 --iterations 4 --seed 1 --wait 2>/dev/null)"
python3 - "${SOLO}" "${BATCHED_BEST}" <<'EOF'
import json, sys
r = json.loads(sys.argv[1])
assert r["ok"] and r["job"]["state"] == "finished", r
solo_best = r["result"]["best_length"]
assert solo_best == int(sys.argv[2]), \
    f"solo best {solo_best} != batched best {sys.argv[2]}"
print(f"solo rerun of seed 1 matches the batched result: {solo_best}")
EOF

# /statusz reports the coalescing, /tracez the batch membership.
python3 - "${ADMIN_PORT}" <<'EOF'
import http.client, json, sys
port = int(sys.argv[1])
def get(path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=5)
    conn.request("GET", path)
    return json.loads(conn.getresponse().read().decode())
s = get("/statusz")
b = s["batcher"]
assert b["max_batch"] == 32, b
assert b["batches"] >= 1 and b["batched_jobs"] >= 16, b
assert b["mean_occupancy"] >= 2.0, b
assert s["stats"]["batches"] >= 1, s["stats"]
t = get("/tracez")
members = [e for e in t["slowest"] if e.get("batch_id")]
assert members, "no /tracez entry carries a batch_id"
occ = {e["batch_occupancy"] for e in members}
assert max(occ) >= 2, occ
print(f"/statusz: {b['batches']} batch(es), {b['batched_jobs']} jobs, "
      f"mean occupancy {b['mean_occupancy']:.1f}; /tracez: {len(members)} "
      f"member(s), occupancy up to {max(occ)}")
EOF

kill -TERM "${BATCH_PID}"
BATCH_RC=0
wait "${BATCH_PID}" || BATCH_RC=$?
[ "${BATCH_RC}" -eq 143 ] \
    || { echo "tspoptd exit ${BATCH_RC}, expected 143"; exit 1; }

# The flushed telemetry shows the batch lifecycle: serve.batch spans in
# the Chrome export, batch.started events in the JSONL log.
grep -q "\"event\":\"batch.started\"" "${BATCH_TMP}/events.jsonl" \
    || { echo "no batch.started event in the JSONL log"; exit 1; }
python3 - "${BATCH_TMP}/trace.json" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
spans = [e for e in events
         if e.get("ph") == "X" and e.get("name") == "serve.batch"]
assert spans, "no serve.batch span in the trace export"
occ = max(int(e["args"]["occupancy"]) for e in spans)
assert occ >= 2, f"serve.batch occupancy never exceeded 1: {occ}"
print(f"trace export: {len(spans)} serve.batch span(s), occupancy up to {occ}")
EOF

# The bench gate: bench_serve asserts batched-vs-per-job equivalence, the
# modeled >=3x aggregate speedup, and population-vs-single-start inside
# the binary; the committed BENCH_serve.json baseline pins the exact
# best-length metrics and the modeled throughput.
"${PREFIX}-release/bench/bench_serve" --smoke --out-dir "${BATCH_TMP}"
python3 scripts/bench_compare.py --threshold 0.25 \
    "BENCH_serve.json" "${BATCH_TMP}/BENCH_serve.json"
echo "micro-batcher end to end: burst, spans, occupancy, bench gate verified."

echo
echo "CI passed."
