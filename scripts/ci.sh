#!/usr/bin/env bash
# Continuous-integration driver.
#
# Pass 1: Release build + full tier-1 test suite.
# Pass 2: AddressSanitizer build of the fault-injection and checkpoint
#         suites — the code paths that juggle threads, retries, partial
#         results, and binary (de)serialization, where memory bugs hide.
# Pass 3: Observability smoke — run a small traced ILS with
#         TSPOPT_TRACE/TSPOPT_REPORT set and validate that both emitted
#         files are well-formed JSON.
# Pass 4: SIMD dispatch matrix — the engine-equivalence suite under
#         TSPOPT_SIMD=scalar and TSPOPT_SIMD=avx2 (the AVX2 leg skips
#         cleanly on hosts without the instructions), then a bench_engines
#         smoke that emits a BENCH_engines.json artifact.
#
# Usage: scripts/ci.sh [build-dir-prefix]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== Pass 1: Release build + full test suite =="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "${PREFIX}-release" -j "${JOBS}"
ctest --test-dir "${PREFIX}-release" --output-on-failure -j "${JOBS}"

echo
echo "== Pass 2: AddressSanitizer build + fault/checkpoint/fuzz suites =="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DTSPOPT_SANITIZE=address >/dev/null
cmake --build "${PREFIX}-asan" -j "${JOBS}" \
      --target test_fault test_checkpoint test_fuzz
ctest --test-dir "${PREFIX}-asan" --output-on-failure -j "${JOBS}" \
      -R 'Fault|Checkpoint|Fuzz'

echo
echo "== Pass 3: Observability smoke (trace + run report) =="
OBS_TMP="$(mktemp -d)"
trap 'rm -rf "${OBS_TMP}"' EXIT
TSPOPT_TRACE="${OBS_TMP}/trace.json" TSPOPT_REPORT="${OBS_TMP}/report.json" \
    "${PREFIX}-release/examples/ils_solver" 200 0.2 1 >/dev/null
for f in trace report; do
  python3 -m json.tool "${OBS_TMP}/${f}.json" >/dev/null \
      || { echo "invalid ${f} JSON"; exit 1; }
done
echo "trace + report JSON valid."

echo
echo "== Pass 4: SIMD dispatch matrix + bench artifact =="
# Every dispatch level must produce bit-identical engine results. The
# equivalence binaries re-run with the level pinned via TSPOPT_SIMD; an
# override naming an unsupported level is a hard error by design, so the
# avx2 leg only runs where the CPU reports the instructions.
for level in scalar avx2; do
  if [ "${level}" = avx2 ] && \
     ! grep -q -w avx2 /proc/cpuinfo 2>/dev/null; then
    echo "TSPOPT_SIMD=${level}: CPU lacks AVX2, skipping."
    continue
  fi
  echo "TSPOPT_SIMD=${level}: equivalence suites"
  TSPOPT_SIMD="${level}" "${PREFIX}-release/tests/test_simd" \
      --gtest_brief=1
  TSPOPT_SIMD="${level}" "${PREFIX}-release/tests/test_engines" \
      --gtest_brief=1
done

BENCH_OUT="${PREFIX}-release/BENCH_engines.json"
"${PREFIX}-release/bench/bench_engines" \
    --benchmark_filter='BM_SequentialPass/1000|BM_SimdPass/1000' \
    --benchmark_min_time=0.05 \
    --benchmark_format=json --benchmark_out="${BENCH_OUT}" >/dev/null
python3 -m json.tool "${BENCH_OUT}" >/dev/null \
    || { echo "invalid bench JSON"; exit 1; }
echo "bench artifact: ${BENCH_OUT}"

echo
echo "CI passed."
