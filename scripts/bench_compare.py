#!/usr/bin/env python3
"""Diff two tspopt.bench_report files and fail on regressions.

Usage:
    bench_compare.py BASELINE.json CURRENT.json [--threshold 0.15]
                     [--strict]

Gate policy, per metric name:
  - ``*_per_sec``  throughput: fail when current < baseline * (1 - threshold).
    Improvements and small dips inside the threshold pass (they are noise).
  - ``best_length`` / ``best_delta`` / ``best_index`` / ``improvements``:
    exact. These are bit-deterministic for a fixed workload, so any
    difference is an algorithmic change and always fails (even with a
    mismatched fingerprint).
  - everything else (``wall_seconds``, ...): informational only.

Benchmarks are matched by name. A benchmark present in the baseline but
missing from the current report fails; a new benchmark only warns (it has
no baseline yet).

The reports carry an environment fingerprint (cpu/simd/threads). When the
fingerprints differ the throughput numbers are not comparable, so
throughput failures downgrade to warnings unless --strict is given.

Exit codes: 0 ok, 1 regression, 2 usage/parse error.
"""

import argparse
import json
import sys

FINGERPRINT_KEYS = ("cpu", "simd", "threads")
EXACT_METRICS = {"best_length", "best_delta", "best_index", "improvements"}


def die(message):
    print(f"bench_compare: {message}", file=sys.stderr)
    sys.exit(2)


def load_report(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        die(f"cannot read {path}: {e}")
    if report.get("schema") != "tspopt.bench_report":
        die(f"{path} is not a tspopt.bench_report")
    version = report.get("schema_version")
    if version != 1:
        die(f"{path} has unsupported schema_version {version}")
    return report


def benchmarks_by_name(report):
    return {b["name"]: b.get("metrics", {}) for b in report.get("benchmarks", [])}


def fingerprint(report):
    run = report.get("run", {})
    return {k: str(run.get(k, "?")) for k in FINGERPRINT_KEYS}


def main():
    parser = argparse.ArgumentParser(
        description="diff two tspopt bench reports")
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed relative throughput drop (default 0.15)")
    parser.add_argument("--strict", action="store_true",
                        help="gate throughput even across fingerprints")
    args = parser.parse_args()
    if not 0.0 <= args.threshold < 1.0:
        die("--threshold must be in [0, 1)")

    base = load_report(args.baseline)
    curr = load_report(args.current)

    base_fp, curr_fp = fingerprint(base), fingerprint(curr)
    comparable = base_fp == curr_fp
    if not comparable:
        diffs = ", ".join(f"{k}: {base_fp[k]!r} -> {curr_fp[k]!r}"
                          for k in FINGERPRINT_KEYS
                          if base_fp[k] != curr_fp[k])
        print(f"WARN fingerprint mismatch ({diffs}); throughput gates "
              f"{'still enforced (--strict)' if args.strict else 'downgraded to warnings'}")
    gate_throughput = comparable or args.strict

    base_benchmarks = benchmarks_by_name(base)
    curr_benchmarks = benchmarks_by_name(curr)

    # Every tripped gate is recorded as (benchmark, metric, delta) and
    # echoed in a closing summary block, so a CI log tail names the exact
    # metric and percentage that failed the run without scrolling back.
    failed_gates = []
    warnings = 0

    for name in sorted(set(base_benchmarks) | set(curr_benchmarks)):
        if name not in curr_benchmarks:
            print(f"FAIL {name}: present in baseline, missing from current")
            failed_gates.append((name, "<benchmark>", "missing from current"))
            continue
        if name not in base_benchmarks:
            print(f"WARN {name}: new benchmark, no baseline")
            warnings += 1
            continue
        base_metrics, curr_metrics = base_benchmarks[name], curr_benchmarks[name]
        for metric in sorted(set(base_metrics) & set(curr_metrics)):
            b, c = base_metrics[metric], curr_metrics[metric]
            if metric in EXACT_METRICS:
                if b != c:
                    try:
                        delta = f"{(c - b) / b * 100.0:+.2f}%" if b else "n/a"
                    except TypeError:
                        delta = "n/a"
                    print(f"FAIL {name} {metric}: exact metric changed "
                          f"{b} -> {c} ({delta})")
                    failed_gates.append((name, metric, f"changed {delta}"))
                continue
            if metric.endswith("_per_sec"):
                if b <= 0:
                    continue
                ratio = c / b
                if ratio < 1.0 - args.threshold:
                    delta = (f"{(1.0 - ratio) * 100.0:.1f}% slower "
                             f"(threshold {args.threshold * 100.0:.1f}%)")
                    line = f"{name} {metric}: {b:.3g} -> {c:.3g} ({delta})"
                    if gate_throughput:
                        print(f"FAIL {line}")
                        failed_gates.append((name, metric, delta))
                    else:
                        print(f"WARN {line}")
                        warnings += 1
                elif ratio > 1.0 + args.threshold:
                    print(f"INFO {name} {metric}: {b:.3g} -> {c:.3g} "
                          f"({(ratio - 1.0) * 100.0:.1f}% faster)")

    compared = len(set(base_benchmarks) & set(curr_benchmarks))
    if compared == 0:
        print("FAIL no common benchmarks between baseline and current")
        failed_gates.append(("<report>", "<benchmarks>", "no common names"))
    if failed_gates:
        print("failed gates:")
        for name, metric, delta in failed_gates:
            print(f"  {name} :: {metric} — {delta}")
    summary = (f"bench_compare: {compared} benchmarks compared, "
               f"{len(failed_gates)} failures, {warnings} warnings")
    print(summary)
    return 1 if failed_gates else 0


if __name__ == "__main__":
    sys.exit(main())
